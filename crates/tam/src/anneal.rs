//! Simulated-annealing TAM architecture search — an alternative to the
//! deterministic hill-climber of [`optimize_architecture`] for design
//! spaces where the balanced starting points mislead greedy refinement.
//!
//! Moves: shift one wire between two TAMs, split a TAM into two, or merge
//! two TAMs. Acceptance follows the Metropolis rule on SOC test time; the
//! best architecture ever visited is returned.
//!
//! # Portfolio restarts
//!
//! [`AnnealOptions::chains`] runs that walk as a *portfolio*: `chains`
//! independent chains, each with its own RNG stream derived from the user
//! seed ([`chain_seeds`]), dispatched on a [`parpool::Pool`]. Chains share
//! one atomic incumbent so a chain can skip cloning partitions that some
//! other chain has already beaten, but the *returned* architecture is
//! reduced with a fixed tie-break — `(test_time, tam_count, widths)`,
//! first chain wins remaining ties — so the result is bit-identical at
//! any worker count, including fully sequential execution. `chains = 1`
//! (the default) reproduces the historical single-walk behaviour exactly:
//! same RNG stream, same accept/reject sequence, same result.
//!
//! [`optimize_architecture`]: crate::optimize_architecture

// soclint: allow(hash-collections) -- Evaluator::memo is lookup-only (get/insert, never iterated); hashing Vec<u32> keys is on the per-proposal hot path
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::atomic::Ordering;

use parpool::{dsan, Pool};
use robust::CancelToken;
use soc_model::SplitMix64;

use crate::cost::CostModel;
use crate::greedy::greedy_schedule;
use crate::optimize::Architecture;
use crate::schedule::ScheduleError;
use crate::search::{Search, SearchStatus};
use crate::sweep::{GreedySweep, SweepOutcome};

/// Options for [`anneal_architecture`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Proposal count *per chain* (default 2000).
    pub iterations: u32,
    /// Initial temperature as a fraction of the starting makespan
    /// (default 0.05).
    pub initial_temp: f64,
    /// Geometric cooling factor per iteration (default 0.997).
    pub cooling: f64,
    /// RNG seed (the search is deterministic per seed).
    pub seed: u64,
    /// Independent restart chains (default 1; `0` is treated as 1). Each
    /// chain gets its own deterministic RNG stream derived from `seed`;
    /// more chains explore more of the landscape for linearly more work.
    pub chains: u32,
    /// Worker threads for dispatching chains (`None` = one per available
    /// CPU). The result never depends on this.
    pub workers: Option<usize>,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            iterations: 2000,
            initial_temp: 0.05,
            cooling: 0.997,
            seed: 0x5EED,
            chains: 1,
            workers: None,
        }
    }
}

/// Per-chain RNG seeds for a portfolio of `chains` walks: chain 0 keeps
/// the user seed (so a one-chain portfolio is the historical walk), later
/// chains draw from a `SplitMix64` stream over it.
fn chain_seeds(user_seed: u64, chains: usize) -> Vec<u64> {
    let mut stream = SplitMix64::new(user_seed);
    (0..chains)
        .map(|i| if i == 0 { user_seed } else { stream.next_u64() })
        .collect()
}

/// Searches TAM partitions of `total_width` by simulated annealing.
///
/// # Errors
///
/// Returns [`ScheduleError`] when even a single TAM of the full budget
/// cannot host every core (same feasibility condition as the hill
/// climber).
pub fn anneal_architecture(
    cost: &CostModel,
    total_width: u32,
    opts: &AnnealOptions,
) -> Result<Architecture, ScheduleError> {
    anneal_architecture_with(cost, total_width, opts, None, &CancelToken::never())
        .map(|search| search.architecture)
}

/// Cancellable, warm-startable variant of [`anneal_architecture`].
///
/// `warm_start` seeds the walk with a known-good partition (e.g. the
/// incumbent of an earlier cascade stage) instead of the single-TAM
/// baseline; an infeasible warm start silently falls back to the
/// baseline. Every chain polls `token` each iteration; when it trips the
/// best architecture visited so far is returned with
/// [`SearchStatus::Interrupted`].
///
/// # Errors
///
/// As [`anneal_architecture`] — the initial greedy schedule runs before
/// the chains launch, so there is always an incumbent to return.
pub fn anneal_architecture_with(
    cost: &CostModel,
    total_width: u32,
    opts: &AnnealOptions,
    warm_start: Option<&[u32]>,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let mut start = vec![total_width];
    if let Some(seed_widths) = warm_start {
        let feasible = !seed_widths.is_empty()
            && !seed_widths.contains(&0)
            && seed_widths.iter().sum::<u32>() == total_width
            && greedy_schedule(cost, seed_widths).is_ok();
        if feasible {
            start = seed_widths.to_vec();
        }
    }
    let baseline = greedy_schedule(cost, &start)?;
    let baseline_time = baseline.makespan();

    let max_tams = total_width.min(cost.core_count() as u32).max(1) as usize;
    let chains = (opts.chains.max(1)) as usize;
    let seeds = chain_seeds(opts.seed, chains);

    // Shared incumbent: chains publish achieved makespans so the others
    // can skip recording partitions that already lost. Purely an
    // allocation saver — see `run_chain` for why it never changes the
    // reduced winner.
    let shared = dsan::AtomicCell::new(
        "tam.anneal.incumbent",
        dsan::Policy::Advisory,
        baseline_time,
    );
    let pool = match opts.workers {
        Some(w) => Pool::with_workers(w),
        None => Pool::new(),
    }
    .labeled("anneal");
    let tasks: Vec<_> = seeds
        .into_iter()
        .map(|seed| {
            let (start, shared) = (&start, &shared);
            move || {
                run_chain(
                    cost,
                    start,
                    baseline_time,
                    opts,
                    seed,
                    max_tams,
                    shared,
                    token,
                )
            }
        })
        .collect();
    let outcomes = pool.run_with(token, tasks);

    // Reduce in chain order with a total tie-break, so the winner is
    // independent of which chain finished first on the wall clock.
    let mut status = SearchStatus::Complete;
    let mut winner: Option<(u64, Vec<u32>)> = None;
    for outcome in outcomes {
        let Some(chain) = outcome else {
            // Skipped by the pool after cancellation.
            status = SearchStatus::Interrupted;
            continue;
        };
        if chain.status == SearchStatus::Interrupted {
            status = SearchStatus::Interrupted;
        }
        if let Some((time, widths)) = chain.best {
            let replace = match &winner {
                None => true, // recorded bests always beat the baseline
                Some((bt, bw)) => (time, widths.len(), &widths) < (*bt, bw.len(), bw),
            };
            if replace {
                winner = Some((time, widths));
            }
        }
    }

    let architecture = match winner {
        Some((test_time, widths)) => {
            let schedule =
                greedy_schedule(cost, &widths).expect("chain certified this partition feasible");
            debug_assert_eq!(schedule.makespan(), test_time);
            Architecture {
                test_time,
                schedule,
            }
        }
        None => Architecture {
            test_time: baseline_time,
            schedule: baseline,
        },
    };
    Ok(Search {
        architecture,
        status,
    })
}

/// What one chain reports back: its best strict improvement over the
/// start (if any survived incumbent suppression) and how it ended.
struct ChainOutcome {
    best: Option<(u64, Vec<u32>)>,
    status: SearchStatus,
}

/// One Metropolis walk. The proposal stream, acceptance decisions and
/// local-best tracking are exactly the historical single-walk anneal;
/// only *recording* differs: an improvement is cloned into `best` only if
/// it is no worse than the shared incumbent at that instant
/// (`fetch_min`'s returned prior). A chain that reaches the global
/// portfolio minimum always records it — every published value is ≥ that
/// minimum, so the comparison cannot suppress it — and entries above the
/// minimum never win the reduction, so suppression timing is invisible
/// in the result.
#[allow(clippy::too_many_arguments)]
fn run_chain(
    cost: &CostModel,
    start: &[u32],
    start_time: u64,
    opts: &AnnealOptions,
    seed: u64,
    max_tams: usize,
    shared: &dsan::AtomicCell,
    token: &CancelToken,
) -> ChainOutcome {
    let mut widths = start.to_vec();
    let mut current_time = start_time;
    let mut rng = SplitMix64::new(seed);
    let mut temp = opts.initial_temp * current_time as f64;

    // The walk revisits partitions constantly (a shift undone two moves
    // later lands on a seen key), so makespans are answered from a memo,
    // and on a miss by an incremental greedy sweep instead of
    // materializing a full Schedule. Only the reduced winner pays for one.
    let mut eval = Evaluator::new(cost);
    eval.seed(&widths, Some(current_time));

    let mut local_time = current_time;
    let mut best: Option<(u64, Vec<u32>)> = None;
    let mut status = SearchStatus::Complete;
    for _ in 0..opts.iterations {
        if token.is_cancelled() {
            status = SearchStatus::Interrupted;
            break;
        }
        let candidate = propose(&widths, max_tams, &mut rng);
        temp *= opts.cooling;
        let Some((candidate, delta)) = candidate else {
            continue;
        };
        let Some(time) = eval.eval_move(&candidate, &delta) else {
            eval.reject(&delta);
            continue; // infeasible partition for some core
        };
        let accept = time <= current_time || {
            let worse = (time - current_time) as f64;
            temp > 0.0 && rng.next_f64() < (-worse / temp).exp()
        };
        if !accept {
            eval.reject(&delta);
            continue;
        }
        eval.accept(&delta);
        widths = candidate;
        current_time = time;
        if current_time < local_time {
            local_time = current_time;
            // soclint: allow(relaxed-ordering) -- advisory cross-chain bound: a stale value only delays sharing a better bound; the returned best is picked by the index-ordered reduction, not this atomic
            let prev = shared.fetch_min(current_time, Ordering::Relaxed);
            if current_time <= prev {
                best = Some((current_time, widths.clone()));
            }
        }
    }
    ChainOutcome { best, status }
}

/// Memoized makespan oracle for one anneal chain: answers "what would
/// [`greedy_schedule`] produce for this partition?" without building the
/// schedule. `None` means the partition is infeasible.
///
/// The underlying [`GreedySweep`] mirrors
/// [`schedule_in_order`](crate::schedule_in_order) decision for decision
/// (same ordering, same tie-breaks), so a makespan reported here is
/// exactly the one the materialized schedule has — the anneal's
/// accept/reject sequence, and therefore its RNG stream and its result,
/// are bit-identical to evaluating every candidate the slow way. Between
/// neighbouring partitions the sweep's sort keys are maintained
/// incrementally from the move's width delta ([`eval_move`]
/// (Self::eval_move) settled by [`accept`](Self::accept) or [`reject`]
/// (Self::reject)) rather than recomputed.
struct Evaluator {
    /// Hash-keyed on purpose: only `get`/`insert` ever touch it, so
    /// iteration order cannot reach an accept/reject decision, and the
    /// lookup sits on the per-proposal hot path (see `eval_move`).
    // soclint: allow(hash-collections) -- lookup-only memo, never iterated; order cannot reach decisions
    #[allow(clippy::disallowed_types)]
    memo: HashMap<Vec<u32>, Option<u64>>,
    sweep: GreedySweep,
    /// Whether the last [`eval_move`](Self::eval_move) pushed its delta
    /// into the sweep. Memo hits never touch the sweep — the hot late-walk
    /// case of a memoized, rejected proposal costs one hash lookup and
    /// nothing else — so [`accept`](Self::accept) / [`reject`]
    /// (Self::reject) consult this to keep the tracked multiset in sync.
    applied: bool,
}

impl Evaluator {
    #[allow(clippy::disallowed_types)]
    fn new(cost: &CostModel) -> Self {
        Evaluator {
            // soclint: allow(hash-collections) -- constructor of the audited lookup-only memo above
            memo: HashMap::new(),
            sweep: GreedySweep::new(cost),
            applied: false,
        }
    }

    /// Pre-loads a known result and points the sweep's tracked multiset
    /// at `widths`, making it the base for subsequent [`eval_move`]
    /// (Self::eval_move) deltas.
    fn seed(&mut self, widths: &[u32], makespan: Option<u64>) {
        self.memo.insert(widths.to_vec(), makespan);
        self.sweep.reset(widths);
    }

    /// Makespan of `candidate`, one [`Delta`] away from the tracked
    /// partition. Every call must be settled by exactly one
    /// [`accept`](Self::accept) or [`reject`](Self::reject) with the same
    /// delta before the next one.
    fn eval_move(&mut self, candidate: &[u32], delta: &Delta) -> Option<u64> {
        if let Some(&hit) = self.memo.get(candidate) {
            self.applied = false;
            return hit;
        }
        self.sweep.apply(delta.removed(), delta.added());
        self.applied = true;
        let result = match self.sweep.run(candidate, None) {
            SweepOutcome::Exact(m) => Some(m),
            SweepOutcome::Infeasible(_) => None,
            SweepOutcome::Cutoff => unreachable!("unbounded sweep cannot cut off"),
        };
        self.memo.insert(candidate.to_vec(), result);
        result
    }

    /// Moves the tracked multiset onto an accepted candidate (no-op when
    /// the evaluation already ran the sweep there).
    fn accept(&mut self, delta: &Delta) {
        if !self.applied {
            self.sweep.apply(delta.removed(), delta.added());
        }
    }

    /// Rolls the tracked multiset back across a rejected move (no-op when
    /// the evaluation never left the current partition).
    fn reject(&mut self, delta: &Delta) {
        if self.applied {
            self.sweep.apply(delta.added(), delta.removed());
        }
    }

    /// The makespan [`greedy_schedule`] would produce for `widths`, or
    /// `None` when some core fits no TAM of the partition. Stand-alone
    /// variant (re-seeds the tracked multiset on a memo miss).
    #[cfg(test)]
    fn makespan(&mut self, widths: &[u32]) -> Option<u64> {
        if let Some(&hit) = self.memo.get(widths) {
            return hit;
        }
        self.sweep.reset(widths);
        let result = match self.sweep.run(widths, None) {
            SweepOutcome::Exact(m) => Some(m),
            SweepOutcome::Infeasible(_) => None,
            SweepOutcome::Cutoff => unreachable!("unbounded sweep cannot cut off"),
        };
        self.memo.insert(widths.to_vec(), result);
        result
    }
}

/// Width multiset change of one proposed move: at most two TAMs leave,
/// at most two join.
struct Delta {
    removed: [u32; 2],
    added: [u32; 2],
    nr: usize,
    na: usize,
}

impl Delta {
    fn removed(&self) -> &[u32] {
        &self.removed[..self.nr]
    }

    fn added(&self) -> &[u32] {
        &self.added[..self.na]
    }
}

/// Proposes a neighbouring partition, or `None` when the move is a
/// no-op. The RNG consumption per arm is part of the chain's determinism
/// contract — do not reorder the draws.
fn propose(widths: &[u32], max_tams: usize, rng: &mut SplitMix64) -> Option<(Vec<u32>, Delta)> {
    let k = widths.len();
    let mut next = widths.to_vec();
    match rng.next_below(3) {
        // Move one wire from a donor to a receiver.
        0 if k >= 2 => {
            let donor = rng.next_below(k as u64) as usize;
            let recv = rng.next_below(k as u64) as usize;
            if donor == recv || next[donor] <= 1 {
                return None;
            }
            let delta = Delta {
                removed: [next[donor], next[recv]],
                added: [next[donor] - 1, next[recv] + 1],
                nr: 2,
                na: 2,
            };
            next[donor] -= 1;
            next[recv] += 1;
            Some((next, delta))
        }
        // Split a TAM in two.
        1 if k < max_tams => {
            let idx = rng.next_below(k as u64) as usize;
            if next[idx] < 2 {
                return None;
            }
            let cut = 1 + rng.next_below(u64::from(next[idx] - 1)) as u32;
            let rest = next[idx] - cut;
            let delta = Delta {
                removed: [next[idx], 0],
                added: [cut, rest],
                nr: 1,
                na: 2,
            };
            next[idx] = cut;
            next.push(rest);
            Some((next, delta))
        }
        // Merge two TAMs.
        2 if k >= 2 => {
            let a = rng.next_below(k as u64) as usize;
            let mut b = rng.next_below(k as u64) as usize;
            if a == b {
                b = (b + 1) % k;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            let delta = Delta {
                removed: [next[lo], next[hi]],
                added: [next[lo] + next[hi], 0],
                nr: 2,
                na: 1,
            };
            next[lo] += next[hi];
            next.swap_remove(hi);
            Some((next, delta))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{optimize_architecture, ArchitectureOptions};

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d", "e"], 16, |i, w| {
            Some(40_000 * (i as u64 + 2) / u64::from(w) + 25)
        })
    }

    #[test]
    fn produces_valid_architectures() {
        let c = cost();
        let arch = anneal_architecture(&c, 12, &AnnealOptions::default()).unwrap();
        arch.schedule.validate(&c).unwrap();
        assert_eq!(arch.schedule.total_width(), 12);
        assert_eq!(arch.test_time, arch.schedule.makespan());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = cost();
        let a = anneal_architecture(&c, 10, &AnnealOptions::default()).unwrap();
        let b = anneal_architecture(&c, 10, &AnnealOptions::default()).unwrap();
        assert_eq!(a, b);
        let other = anneal_architecture(
            &c,
            10,
            &AnnealOptions {
                seed: 99,
                ..Default::default()
            },
        )
        .unwrap();
        // Different seed may or may not find the same optimum, but must be
        // valid.
        other.schedule.validate(&c).unwrap();
    }

    #[test]
    fn never_worse_than_single_tam() {
        let c = cost();
        let single = greedy_schedule(&c, &[14]).unwrap().makespan();
        let arch = anneal_architecture(&c, 14, &AnnealOptions::default()).unwrap();
        assert!(arch.test_time <= single);
    }

    #[test]
    fn competitive_with_hill_climbing() {
        let c = cost();
        let hill = optimize_architecture(&c, 16, &ArchitectureOptions::default()).unwrap();
        let sa = anneal_architecture(&c, 16, &AnnealOptions::default()).unwrap();
        // Within 15% of the deterministic optimizer on this easy landscape.
        assert!(
            sa.test_time as f64 <= hill.test_time as f64 * 1.15,
            "SA {} vs hill {}",
            sa.test_time,
            hill.test_time
        );
    }

    #[test]
    fn respects_infeasible_widths() {
        let mut m = CostModel::new(8);
        m.push_core(
            "wide",
            vec![None, None, None, None, None, None, None, Some(100)],
        );
        m.push_core("any", vec![Some(80); 8]);
        // Splitting is never accepted (would orphan `wide`); result must
        // still be valid.
        let arch = anneal_architecture(&m, 8, &AnnealOptions::default()).unwrap();
        arch.schedule.validate(&m).unwrap();
        assert_eq!(arch.schedule.tam_widths(), &[8]);
    }

    #[test]
    fn cancelled_anneal_still_returns_valid_incumbent() {
        let c = cost();
        let token = CancelToken::expiring_in(std::time::Duration::ZERO);
        let search =
            anneal_architecture_with(&c, 12, &AnnealOptions::default(), None, &token).unwrap();
        assert_eq!(search.status, SearchStatus::Interrupted);
        search.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn warm_start_is_honored_and_never_worse() {
        let c = cost();
        let baseline = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        let widths = baseline.schedule.tam_widths().to_vec();
        let token = CancelToken::never();
        let warm =
            anneal_architecture_with(&c, 12, &AnnealOptions::default(), Some(&widths), &token)
                .unwrap();
        assert!(warm.is_complete());
        warm.architecture.schedule.validate(&c).unwrap();
        // The walk starts at the warm partition; its best can only improve
        // on that starting point.
        assert!(warm.architecture.test_time <= baseline.test_time);
    }

    #[test]
    fn infeasible_warm_start_falls_back_to_baseline() {
        let c = cost();
        // Sums to the wrong total and contains a zero: both must be ignored.
        for bad in [vec![5u32, 5], vec![12, 0]] {
            let search = anneal_architecture_with(
                &c,
                12,
                &AnnealOptions::default(),
                Some(&bad),
                &CancelToken::never(),
            )
            .unwrap();
            search.architecture.schedule.validate(&c).unwrap();
        }
    }

    #[test]
    fn evaluator_matches_greedy_schedule_exactly() {
        // Mixed feasibility: `narrow` only below width 3, `wide` only at 4+.
        let mut m = CostModel::new(6);
        m.push_core(
            "a",
            vec![Some(90), Some(50), Some(40), Some(35), Some(31), Some(30)],
        );
        m.push_core("narrow", vec![Some(70), Some(44), None, None, None, None]);
        m.push_core("wide", vec![None, None, None, Some(25), Some(22), Some(20)]);
        m.push_core(
            "b",
            vec![Some(88), Some(51), Some(40), Some(33), Some(28), Some(26)],
        );
        let mut eval = Evaluator::new(&m);
        let partitions: [&[u32]; 9] = [
            &[6],
            &[3, 3],
            &[1, 5],
            &[2, 4],
            &[1, 1, 4],
            &[2, 2, 2],
            &[4, 2],
            &[5, 1],
            &[3, 3], // repeat: memo path must agree too
        ];
        for widths in partitions {
            let expect = greedy_schedule(&m, widths).ok().map(|s| s.makespan());
            assert_eq!(eval.makespan(widths), expect, "widths {widths:?}");
        }
        // `wide` fits nowhere in an all-narrow partition: infeasible, and
        // the memo caches the verdict.
        assert_eq!(eval.makespan(&[1, 1, 1, 1, 1, 1]), None);
        assert_eq!(eval.makespan(&[1, 1, 1, 1, 1, 1]), None);
    }

    #[test]
    fn single_chain_portfolio_is_the_historical_walk() {
        // The chains=1 path must consume the RNG identically to the
        // pre-portfolio implementation, so results for the default seed
        // stay stable across the refactor (cross-checked against the
        // recorded pre-portfolio output of this exact configuration).
        let c = cost();
        let one = anneal_architecture(&c, 12, &AnnealOptions::default()).unwrap();
        let explicit = anneal_architecture(
            &c,
            12,
            &AnnealOptions {
                chains: 1,
                workers: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one, explicit);
    }

    #[test]
    fn portfolio_result_is_worker_count_invariant() {
        let c = cost();
        let mut results = Vec::new();
        for workers in [1usize, 2, 4] {
            let opts = AnnealOptions {
                chains: 3,
                workers: Some(workers),
                ..Default::default()
            };
            results.push(anneal_architecture(&c, 14, &opts).unwrap());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        results[0].schedule.validate(&c).unwrap();
    }

    #[test]
    fn more_chains_never_hurt() {
        let c = cost();
        let one = anneal_architecture(&c, 14, &AnnealOptions::default()).unwrap();
        let four = anneal_architecture(
            &c,
            14,
            &AnnealOptions {
                chains: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // Chain 0 of the portfolio *is* the single walk, so the reduced
        // best can only match or beat it.
        assert!(four.test_time <= one.test_time);
        four.schedule.validate(&c).unwrap();
    }

    #[test]
    fn chain_seeds_are_stable_and_distinct() {
        let seeds = chain_seeds(0x5EED, 4);
        assert_eq!(seeds[0], 0x5EED, "chain 0 keeps the user seed");
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "seeds collide: {seeds:?}");
        assert_eq!(chain_seeds(0x5EED, 4), seeds, "derivation must be stable");
    }

    #[test]
    fn zero_budget_rejected() {
        assert!(matches!(
            anneal_architecture(&cost(), 0, &AnnealOptions::default()),
            Err(ScheduleError::BadPartition { .. })
        ));
    }
}
