//! Mutual-exclusion (conflict) constrained scheduling (extension).
//!
//! Some tests may not overlap in time even when they sit on different
//! TAMs: two cores sharing an analog supply, a core's INTEST and the
//! EXTEST of the interconnect around it, or tests reusing one BIST
//! controller. This module schedules under an explicit conflict graph —
//! pairs of cores whose tests must be disjoint in time.

use std::fmt;

use crate::cost::CostModel;
use crate::greedy::longest_first_order;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};

/// A symmetric conflict relation over core indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Conflicts {
    pairs: Vec<(usize, usize)>,
}

impl Conflicts {
    /// No conflicts.
    pub fn new() -> Self {
        Conflicts::default()
    }

    /// Builds the relation from unordered pairs.
    pub fn from_pairs(pairs: impl Into<Vec<(usize, usize)>>) -> Self {
        Conflicts {
            pairs: pairs.into(),
        }
    }

    /// Builds the relation from exclusion *groups*: within each group, no
    /// two tests may overlap (a clique). This models hierarchical access —
    /// child cores reached through one parent wrapper must be tested
    /// serially — and shared BIST controllers.
    pub fn from_groups(groups: &[Vec<usize>]) -> Self {
        let mut c = Conflicts::new();
        for group in groups {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    c.add(a, b);
                }
            }
        }
        c
    }

    /// Adds a conflicting pair.
    pub fn add(&mut self, a: usize, b: usize) -> &mut Self {
        self.pairs.push((a, b));
        self
    }

    /// The conflicting pairs.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Returns `true` when cores `a` and `b` may not overlap.
    pub fn conflicts(&self, a: usize, b: usize) -> bool {
        self.pairs
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Checks a schedule against the relation.
    ///
    /// # Errors
    ///
    /// Returns the first overlapping conflicting pair.
    pub fn validate(&self, schedule: &Schedule) -> Result<(), ConflictViolation> {
        let tests = schedule.tests();
        for (i, a) in tests.iter().enumerate() {
            for b in &tests[i + 1..] {
                if self.conflicts(a.core, b.core) && a.start < b.end() && b.start < a.end() {
                    return Err(ConflictViolation {
                        first: a.core,
                        second: b.core,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Error: two conflicting tests overlap in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictViolation {
    /// One core of the offending pair.
    pub first: usize,
    /// The other core.
    pub second: usize,
}

impl fmt::Display for ConflictViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflicting cores {} and {} overlap in time",
            self.first, self.second
        )
    }
}

impl std::error::Error for ConflictViolation {}

/// Schedules all cores onto `widths`, keeping conflicting tests disjoint
/// in time: each core is placed at the earliest instant where its TAM is
/// free *and* no conflicting test overlaps.
///
/// # Errors
///
/// Same conditions as [`greedy_schedule`](crate::greedy_schedule).
pub fn conflict_schedule(
    cost: &CostModel,
    widths: &[u32],
    conflicts: &Conflicts,
) -> Result<Schedule, ScheduleError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    }
    let order = longest_first_order(cost, widths);
    let mut placed: Vec<ScheduledTest> = Vec::with_capacity(order.len());
    let mut tam_free = vec![0u64; widths.len()];

    for &core in &order {
        let mut best: Option<ScheduledTest> = None;
        for (j, &w) in widths.iter().enumerate() {
            let Some(d) = cost.time(core, w) else {
                continue;
            };
            let start = earliest_conflict_free(&placed, conflicts, core, tam_free[j], d);
            let cand = ScheduledTest {
                core,
                tam: j,
                start,
                duration: d,
            };
            if best
                .as_ref()
                .is_none_or(|b| (cand.end(), cand.start) < (b.end(), b.start))
            {
                best = Some(cand);
            }
        }
        let Some(test) = best else {
            return Err(ScheduleError::CoreUnschedulable { core });
        };
        tam_free[test.tam] = test.end();
        placed.push(test);
    }
    Ok(Schedule::new(widths.to_vec(), placed))
}

fn earliest_conflict_free(
    placed: &[ScheduledTest],
    conflicts: &Conflicts,
    core: usize,
    ready: u64,
    duration: u64,
) -> u64 {
    let blockers: Vec<&ScheduledTest> = placed
        .iter()
        .filter(|t| conflicts.conflicts(t.core, core))
        .collect();
    let mut candidates: Vec<u64> = blockers.iter().map(|t| t.end()).collect();
    candidates.push(ready);
    candidates.sort_unstable();
    for t in candidates {
        if t < ready {
            continue;
        }
        let end = t + duration;
        let clash = blockers.iter().any(|b| b.start < end && t < b.end());
        if !clash {
            return t;
        }
    }
    blockers
        .iter()
        .map(|t| t.end())
        .max()
        .unwrap_or(ready)
        .max(ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 4, |i, w| {
            Some(800 * (i as u64 + 1) / u64::from(w))
        })
    }

    #[test]
    fn no_conflicts_behaves_like_greedy_class() {
        let c = cost();
        let s = conflict_schedule(&c, &[2, 2], &Conflicts::new()).unwrap();
        s.validate(&c).unwrap();
        let g = greedy_schedule(&c, &[2, 2]).unwrap();
        assert_eq!(s.makespan(), g.makespan());
    }

    #[test]
    fn conflicting_pair_never_overlaps() {
        let c = cost();
        let conflicts = Conflicts::from_pairs(vec![(2, 3)]);
        let s = conflict_schedule(&c, &[2, 2], &conflicts).unwrap();
        s.validate(&c).unwrap();
        conflicts.validate(&s).unwrap();
    }

    #[test]
    fn full_clique_serializes_everything() {
        let c = cost();
        let mut conflicts = Conflicts::new();
        for a in 0..4 {
            for b in a + 1..4 {
                conflicts.add(a, b);
            }
        }
        let s = conflict_schedule(&c, &[2, 2], &conflicts).unwrap();
        conflicts.validate(&s).unwrap();
        let total: u64 = s.tests().iter().map(|t| t.duration).sum();
        assert_eq!(s.makespan(), total);
    }

    #[test]
    fn conflicts_cost_time_but_never_correctness() {
        let c = cost();
        let free = conflict_schedule(&c, &[1, 3], &Conflicts::new())
            .unwrap()
            .makespan();
        let constrained =
            conflict_schedule(&c, &[1, 3], &Conflicts::from_pairs(vec![(0, 1), (2, 3)])).unwrap();
        constrained.validate(&c).unwrap();
        assert!(constrained.makespan() >= free);
    }

    #[test]
    fn groups_expand_to_cliques() {
        let c = Conflicts::from_groups(&[vec![0, 1, 2], vec![3, 4]]);
        assert!(c.conflicts(0, 1) && c.conflicts(1, 2) && c.conflicts(0, 2));
        assert!(c.conflicts(3, 4));
        assert!(!c.conflicts(2, 3));
        assert_eq!(c.pairs().len(), 4);
    }

    #[test]
    fn hierarchical_groups_serialize_children() {
        let cost = cost();
        // Cores 0..2 are children of one parent wrapper.
        let c = Conflicts::from_groups(&[vec![0, 1, 2]]);
        let s = conflict_schedule(&cost, &[2, 2], &c).unwrap();
        c.validate(&s).unwrap();
        s.validate(&cost).unwrap();
    }

    #[test]
    fn validator_catches_overlap() {
        let conflicts = Conflicts::from_pairs(vec![(0, 1)]);
        let bad = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 100,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 50,
                    duration: 100,
                },
            ],
        );
        let err = conflicts.validate(&bad).unwrap_err();
        assert_eq!(
            err,
            ConflictViolation {
                first: 0,
                second: 1
            }
        );
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn back_to_back_conflicting_tests_are_legal() {
        let conflicts = Conflicts::from_pairs(vec![(0, 1)]);
        let ok = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 100,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 100,
                    duration: 100,
                },
            ],
        );
        assert!(conflicts.validate(&ok).is_ok());
    }
}
