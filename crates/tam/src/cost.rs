//! Width-indexed test-time cost models.
//!
//! The scheduler is deliberately decoupled from *how* a core's test time at
//! a given TAM width is obtained (plain wrapper design, per-core
//! decompressor, LFSR reseeding, …): it consumes a [`CostModel`] — one row
//! per core, one entry per TAM width — built by the planning crate.

use std::fmt;

/// Per-core, per-width test times. `None` marks an infeasible width (e.g. a
/// decompressor that cannot operate below its minimum codeword width).
///
/// # Examples
///
/// ```
/// use tam::CostModel;
///
/// let mut cost = CostModel::new(4);
/// cost.push_core("a", vec![Some(100), Some(60), Some(40), Some(30)]);
/// cost.push_core("b", vec![None, Some(80), Some(70), Some(65)]);
/// assert_eq!(cost.time(0, 3), Some(40));
/// assert_eq!(cost.time(1, 1), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    max_width: u32,
    names: Vec<String>,
    rows: Vec<Vec<Option<u64>>>,
}

impl CostModel {
    /// Creates an empty model covering widths `1..=max_width`.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub fn new(max_width: u32) -> Self {
        assert!(max_width > 0, "TAM width budget must be positive");
        CostModel {
            max_width,
            names: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a core with test times `times[w - 1]` for each width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `times.len() != max_width` or every width is infeasible.
    pub fn push_core(&mut self, name: impl Into<String>, times: Vec<Option<u64>>) {
        assert_eq!(
            times.len(),
            self.max_width as usize,
            "expected one entry per width 1..={}",
            self.max_width
        );
        assert!(
            times.iter().any(Option::is_some),
            "core has no feasible width at all"
        );
        self.names.push(name.into());
        self.rows.push(times);
    }

    /// Builds a model by evaluating `f(core_index, width)` for every core
    /// and width.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`push_core`](Self::push_core).
    pub fn from_fn(
        names: &[&str],
        max_width: u32,
        mut f: impl FnMut(usize, u32) -> Option<u64>,
    ) -> Self {
        let mut model = CostModel::new(max_width);
        for (i, name) in names.iter().enumerate() {
            let times = (1..=max_width).map(|w| f(i, w)).collect();
            model.push_core(*name, times);
        }
        model
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.rows.len()
    }

    /// The widest width the model covers.
    pub fn max_width(&self) -> u32 {
        self.max_width
    }

    /// The name of core `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn name(&self, core: usize) -> &str {
        &self.names[core]
    }

    /// Test time of core `core` on a `width`-wire TAM, or `None` when
    /// infeasible. Widths above `max_width` saturate to `max_width`
    /// (extra wires can always be left unused).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `width == 0`.
    pub fn time(&self, core: usize, width: u32) -> Option<u64> {
        assert!(width > 0, "TAM width must be positive");
        let w = width.min(self.max_width);
        self.rows[core][(w - 1) as usize]
    }

    /// The best (smallest) test time of `core` over all widths.
    pub fn best_time(&self, core: usize) -> u64 {
        self.rows[core]
            .iter()
            .flatten()
            .copied()
            .min()
            .expect("push_core guarantees a feasible width")
    }

    /// Lower bound on SOC test time for any architecture with exactly `k`
    /// TAMs in a `total_width`-wire budget, from the prefix-minima of the
    /// cost rows.
    ///
    /// With `k` TAMs of width ≥ 1 each, no TAM is wider than
    /// `total_width - k + 1`, so core `c` runs for at least
    /// `lb_c = min_{w ≤ total_width - k + 1} τ_c(w)` — a width-monotone
    /// prefix-minimum. The bound is the larger of (a) the largest single
    /// `lb_c` (some TAM hosts that core) and (b) `⌈Σ_c lb_c / k⌉` (the
    /// `k` TAMs run in parallel and each core occupies exactly one).
    /// `u64::MAX` means no `k`-TAM architecture is feasible at all.
    ///
    /// Sound for pruning: every schedule any `k`-TAM search could return
    /// has a makespan ≥ this value, so a `k` whose bound exceeds an
    /// *achieved* incumbent can be skipped without changing the winner.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > total_width`.
    pub fn lower_bound_for_k(&self, total_width: u32, k: u32) -> u64 {
        assert!(
            k >= 1 && k <= total_width,
            "cannot bound {k} TAMs in {total_width} wires"
        );
        let cap = (total_width - k + 1).min(self.max_width) as usize;
        let mut worst = 0u64;
        let mut sum: u128 = 0;
        for row in &self.rows {
            let Some(lb) = row[..cap].iter().flatten().copied().min() else {
                return u64::MAX; // this core fits no TAM that narrow
            };
            worst = worst.max(lb);
            sum += u128::from(lb);
        }
        let spread = sum.div_ceil(u128::from(k));
        worst.max(u64::try_from(spread).unwrap_or(u64::MAX))
    }

    /// Lower bound on SOC test time on a `total_width`-wire TAM: the larger
    /// of (a) the largest single-core best time and (b) total work divided
    /// by width, where each core's work is `min_w (w · τ(w))` — the least
    /// wire-cycles it can ever consume.
    pub fn lower_bound(&self, total_width: u32) -> u64 {
        let max_single = (0..self.core_count())
            .map(|i| self.best_time(i))
            .max()
            .unwrap_or(0);
        let total_work: u64 = (0..self.core_count())
            .map(|i| {
                (1..=self.max_width)
                    .filter_map(|w| self.time(i, w).map(|t| t * u64::from(w)))
                    .min()
                    .expect("feasible width exists")
            })
            .sum();
        max_single.max(total_work.div_ceil(u64::from(total_width)))
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cost model ({} cores, widths 1..={}):",
            self.core_count(),
            self.max_width
        )?;
        for (i, name) in self.names.iter().enumerate() {
            write!(f, "  {name:>12}:")?;
            for t in &self.rows[i] {
                match t {
                    Some(t) => write!(f, " {t:>9}")?,
                    None => write!(f, " {:>9}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        let mut m = CostModel::new(3);
        m.push_core("a", vec![Some(90), Some(50), Some(40)]);
        m.push_core("b", vec![None, Some(70), Some(30)]);
        m
    }

    #[test]
    fn lookup_and_saturation() {
        let m = model();
        assert_eq!(m.time(0, 1), Some(90));
        assert_eq!(m.time(1, 1), None);
        assert_eq!(m.time(0, 99), Some(40), "saturates to max width");
        assert_eq!(m.best_time(1), 30);
        assert_eq!(m.name(1), "b");
    }

    #[test]
    fn from_fn_builds_rows() {
        let m = CostModel::from_fn(&["x", "y"], 4, |i, w| {
            Some((i as u64 + 1) * 100 / u64::from(w))
        });
        assert_eq!(m.core_count(), 2);
        assert_eq!(m.time(1, 4), Some(50));
    }

    #[test]
    fn lower_bound_respects_both_terms() {
        let mut m = CostModel::new(2);
        m.push_core("big", vec![Some(1000), Some(1000)]);
        m.push_core("small", vec![Some(10), Some(6)]);
        // Single-core bound dominates.
        assert!(m.lower_bound(2) >= 1000);
        // Work bound: big contributes min(1000·1, 2000) = 1000 wire-cycles.
        let mut flat = CostModel::new(2);
        flat.push_core("a", vec![Some(100), Some(50)]);
        flat.push_core("b", vec![Some(100), Some(50)]);
        assert_eq!(flat.lower_bound(2), 100); // 200 wire-cycles / 2 wires
    }

    #[test]
    fn per_k_lower_bound_is_sound() {
        let mut m = CostModel::new(8);
        m.push_core(
            "a",
            vec![
                Some(800),
                Some(400),
                Some(270),
                Some(200),
                None,
                None,
                None,
                None,
            ],
        );
        m.push_core(
            "b",
            vec![
                Some(400),
                Some(200),
                Some(135),
                Some(100),
                Some(80),
                None,
                None,
                None,
            ],
        );
        let bounds: Vec<u64> = (1..=8).map(|k| m.lower_bound_for_k(8, k)).collect();
        // k = 1: both cores serialize on the one TAM, each at its global
        // best: 200 + 80.
        assert_eq!(bounds[0], 280);
        // k = 2: widest TAM is 7 wires, so still each core's global best;
        // the parallel-machines term ⌈(200 + 80) / 2⌉ = 140 < 200. (Note
        // the bound is *not* monotone in k: the serialization term fades
        // as TAMs multiply, the width cap bites as they narrow.)
        assert_eq!(bounds[1], 200);
        // k = 8: every TAM is a single wire; core b is feasible but the
        // widest TAM (1 wire) forces τ_a(1) = 800.
        assert_eq!(bounds[7], 800);
        // The per-core width cap makes the *cap term* monotone: the bound
        // can never dip below the widest-TAM constraint.
        for (i, &b) in bounds.iter().enumerate() {
            let cap = 8 - i as u32;
            let worst = (0..2)
                .map(|c| {
                    (1..=cap)
                        .filter_map(|w| m.time(c, w))
                        .min()
                        .unwrap_or(u64::MAX)
                })
                .max()
                .unwrap();
            assert!(b >= worst, "k={} bound {b} below cap term {worst}", i + 1);
        }
    }

    #[test]
    fn per_k_lower_bound_flags_infeasible_k() {
        let mut m = CostModel::new(4);
        m.push_core("wide-only", vec![None, None, None, Some(5)]);
        m.push_core("easy", vec![Some(10); 4]);
        // k = 1 can host the wide core; k = 2 caps widths at 3 wires.
        assert_eq!(m.lower_bound_for_k(4, 1), 15);
        assert_eq!(m.lower_bound_for_k(4, 2), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "cannot bound")]
    fn per_k_lower_bound_rejects_excess_tams() {
        model().lower_bound_for_k(2, 3);
    }

    #[test]
    #[should_panic(expected = "one entry per width")]
    fn wrong_row_length_panics() {
        CostModel::new(3).push_core("a", vec![Some(1)]);
    }

    #[test]
    #[should_panic(expected = "no feasible width")]
    fn all_infeasible_panics() {
        CostModel::new(2).push_core("a", vec![None, None]);
    }

    #[test]
    fn display_renders_all_cores() {
        let s = model().to_string();
        assert!(s.contains("a") && s.contains("b") && s.contains("-"));
    }
}
