//! Exhaustive (oracle) architecture optimization for small instances.
//!
//! Enumerates every TAM partition (as a non-increasing width multiset) and
//! every core-to-TAM assignment, returning the true optimum. Exponential —
//! intended for validating the heuristics (`optimize_architecture`,
//! `anneal_architecture`) on test-sized inputs, and usable in anger only
//! for a handful of cores and wires.

use robust::CancelToken;

use crate::cost::CostModel;
use crate::optimize::Architecture;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};
use crate::search::Search;

/// Hard cap on the enumeration size, to protect against accidental use on
/// real instances (`assignments = tams^cores`).
const MAX_ASSIGNMENTS: u64 = 20_000_000;

/// How many odometer steps run between cancel-token polls: cheap enough
/// to bound overshoot to well under a millisecond, rare enough that the
/// atomic load does not dominate the inner loop.
const CANCEL_POLL_STRIDE: u64 = 4096;

/// Finds the optimal fixed-width-TAM architecture by brute force.
///
/// # Errors
///
/// * [`ScheduleError::BadPartition`] — zero budget, or the instance
///   exceeds the enumeration cap.
/// * [`ScheduleError::CoreUnschedulable`] — some core is infeasible even
///   on a single full-budget TAM.
pub fn exhaustive_architecture(
    cost: &CostModel,
    total_width: u32,
    max_tams: u32,
) -> Result<Architecture, ScheduleError> {
    exhaustive_architecture_with(cost, total_width, max_tams, &CancelToken::never())
        .map(|search| search.architecture)
}

/// Cancellable variant of [`exhaustive_architecture`].
///
/// Polls `token` between partitions and every few thousand assignment
/// steps. When it trips, the enumeration stops and the best architecture
/// seen so far is returned with [`SearchStatus::Interrupted`] — a valid
/// (but no longer provably optimal) incumbent for the caller's fallback
/// path.
///
/// # Errors
///
/// As [`exhaustive_architecture`], plus [`ScheduleError::Interrupted`]
/// when the token trips before any feasible assignment was evaluated.
pub fn exhaustive_architecture_with(
    cost: &CostModel,
    total_width: u32,
    max_tams: u32,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let n = cost.core_count();
    let k_max = max_tams.min(total_width).min(n as u32).max(1);

    let mut best: Option<Architecture> = None;
    let mut interrupted = false;
    'search: for k in 1..=k_max {
        let combos = (k as u64).checked_pow(n as u32);
        if combos.is_none_or(|c| c > MAX_ASSIGNMENTS) {
            return Err(ScheduleError::BadPartition {
                total_width,
                tams: k,
            });
        }
        for widths in partitions(total_width, k) {
            if token.is_cancelled() {
                interrupted = true;
                break 'search;
            }
            let (arch, cut_short) = best_assignment(cost, &widths, token);
            if let Some(arch) = arch {
                if best.as_ref().is_none_or(|b| arch.test_time < b.test_time) {
                    best = Some(arch);
                }
            }
            if cut_short {
                interrupted = true;
                break 'search;
            }
        }
    }
    match best {
        Some(architecture) => Ok(if interrupted {
            Search::interrupted(architecture)
        } else {
            Search::complete(architecture)
        }),
        None if interrupted => Err(ScheduleError::Interrupted),
        None => {
            // Even [total_width] failed → some core is infeasible.
            Err(ScheduleError::CoreUnschedulable {
                core: (0..n)
                    .find(|&i| cost.time(i, total_width).is_none())
                    .unwrap_or(0),
            })
        }
    }
}

/// All partitions of `total` into exactly `k` positive, non-increasing
/// parts.
fn partitions(total: u32, k: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k as usize);
    fn rec(
        remaining: u32,
        parts: u32,
        max_part: u32,
        current: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if parts == 0 {
            if remaining == 0 {
                out.push(current.clone());
            }
            return;
        }
        // Each remaining part needs at least 1 wire.
        let hi = max_part.min(remaining.saturating_sub(parts - 1));
        let lo = remaining.div_ceil(parts); // keep non-increasing feasible
        for part in (lo..=hi).rev() {
            current.push(part);
            rec(remaining - part, parts - 1, part, current, out);
            current.pop();
        }
    }
    rec(total, k, total, &mut current, &mut out);
    out
}

/// Optimal assignment of all cores to the given widths (exhaustive).
///
/// Returns the best architecture over the assignments examined plus a
/// flag saying whether the token cut the enumeration short.
fn best_assignment(
    cost: &CostModel,
    widths: &[u32],
    token: &CancelToken,
) -> (Option<Architecture>, bool) {
    let n = cost.core_count();
    let k = widths.len();
    let mut assignment = vec![0usize; n];
    let mut best: Option<(u64, Vec<usize>)> = None;
    let mut steps: u64 = 0;

    loop {
        steps += 1;
        if steps.is_multiple_of(CANCEL_POLL_STRIDE) && token.is_cancelled() {
            let arch = best.map(|(makespan, a)| build_architecture(cost, widths, &a, makespan));
            return (arch, true);
        }
        // Evaluate: serial load per TAM.
        let mut loads = vec![0u64; k];
        let mut feasible = true;
        for (core, &tam) in assignment.iter().enumerate() {
            match cost.time(core, widths[tam]) {
                Some(t) => loads[tam] += t,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            let makespan = loads.iter().copied().max().unwrap_or(0);
            if best.as_ref().is_none_or(|(b, _)| makespan < *b) {
                best = Some((makespan, assignment.clone()));
            }
        }
        // Odometer increment.
        let mut i = 0;
        // soclint: allow(cancel-coverage) -- bounded odometer carry: at most n digits per increment
        loop {
            if i == n {
                let arch = best.map(|(makespan, a)| build_architecture(cost, widths, &a, makespan));
                return (arch, false);
            }
            assignment[i] += 1;
            if assignment[i] < k {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

fn build_architecture(
    cost: &CostModel,
    widths: &[u32],
    assignment: &[usize],
    makespan: u64,
) -> Architecture {
    let mut finish = vec![0u64; widths.len()];
    let mut tests = Vec::with_capacity(assignment.len());
    for (core, &tam) in assignment.iter().enumerate() {
        let d = cost
            .time(core, widths[tam])
            .expect("assignment was checked feasible");
        tests.push(ScheduledTest {
            core,
            tam,
            start: finish[tam],
            duration: d,
        });
        finish[tam] += d;
    }
    Architecture {
        test_time: makespan,
        schedule: Schedule::new(widths.to_vec(), tests),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{optimize_architecture, ArchitectureOptions};
    use crate::search::SearchStatus;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 8, |i, w| {
            Some([900u64, 700, 400, 300][i] / u64::from(w) + 11)
        })
    }

    #[test]
    fn partitions_are_exact_and_nonincreasing() {
        let p = partitions(6, 3);
        for widths in &p {
            assert_eq!(widths.iter().sum::<u32>(), 6);
            assert!(widths.windows(2).all(|w| w[0] >= w[1]));
            assert!(widths.iter().all(|&w| w > 0));
        }
        // 6 = 4+1+1 = 3+2+1 = 2+2+2 → 3 partitions into 3 parts.
        assert_eq!(p.len(), 3);
        assert_eq!(partitions(5, 1), vec![vec![5]]);
    }

    #[test]
    fn oracle_finds_valid_optimum() {
        let c = cost();
        let arch = exhaustive_architecture(&c, 8, 4).unwrap();
        arch.schedule.validate(&c).unwrap();
        assert!(arch.test_time >= c.lower_bound(8));
    }

    #[test]
    fn heuristic_matches_oracle_on_this_instance() {
        let c = cost();
        let oracle = exhaustive_architecture(&c, 8, 4).unwrap();
        let heur = optimize_architecture(&c, 8, &ArchitectureOptions::default()).unwrap();
        assert!(heur.test_time >= oracle.test_time, "oracle is optimal");
        assert!(
            heur.test_time <= oracle.test_time * 13 / 10,
            "heuristic {} vs oracle {}",
            heur.test_time,
            oracle.test_time
        );
    }

    #[test]
    fn infeasible_core_reported() {
        let mut m = CostModel::new(6);
        m.push_core("wide", vec![None, None, None, None, None, Some(9)]);
        m.push_core("easy", vec![Some(5); 6]);
        assert!(exhaustive_architecture(&m, 6, 2).is_ok());
        assert!(matches!(
            exhaustive_architecture(&m, 4, 2),
            Err(ScheduleError::CoreUnschedulable { core: 0 })
        ));
    }

    #[test]
    fn pre_tripped_token_reports_interrupted() {
        let c = cost();
        let token = CancelToken::never();
        token.cancel();
        assert!(matches!(
            exhaustive_architecture_with(&c, 8, 4, &token),
            Err(ScheduleError::Interrupted)
        ));
    }

    #[test]
    fn cancelled_search_returns_valid_incumbent() {
        // Big enough that the odometer passes several poll strides: the
        // token trips via its zero deadline, and the incumbent found before
        // the first poll must still be a valid architecture.
        let c = CostModel::from_fn(&["x"; 12], 6, |i, w| {
            Some(5_000 * (i as u64 + 1) / u64::from(w) + 3)
        });
        let token = CancelToken::expiring_in(std::time::Duration::ZERO);
        match exhaustive_architecture_with(&c, 6, 3, &token) {
            Ok(search) => {
                assert_eq!(search.status, SearchStatus::Interrupted);
                search.architecture.schedule.validate(&c).unwrap();
            }
            Err(ScheduleError::Interrupted) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn never_token_matches_plain_search() {
        let c = cost();
        let plain = exhaustive_architecture(&c, 8, 4).unwrap();
        let with = exhaustive_architecture_with(&c, 8, 4, &CancelToken::never()).unwrap();
        assert!(with.is_complete());
        assert_eq!(with.architecture, plain);
    }

    #[test]
    fn oversized_instances_are_refused() {
        let c = CostModel::from_fn(&["x"; 40], 8, |_, w| Some(100 / u64::from(w) + 1));
        assert!(matches!(
            exhaustive_architecture(&c, 8, 8),
            Err(ScheduleError::BadPartition { .. })
        ));
    }
}
