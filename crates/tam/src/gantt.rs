//! ASCII Gantt rendering of test schedules (the view in the paper's
//! Fig. 4).

use crate::cost::CostModel;
use crate::schedule::Schedule;

/// Renders `schedule` as an ASCII Gantt chart, one row per TAM, `columns`
/// characters wide.
///
/// # Panics
///
/// Panics if `columns < 10`.
///
/// # Examples
///
/// ```
/// use tam::{greedy_schedule, render_gantt, CostModel};
///
/// let mut cost = CostModel::new(2);
/// cost.push_core("cpu", vec![Some(100), Some(60)]);
/// cost.push_core("dsp", vec![Some(80), Some(50)]);
/// let schedule = greedy_schedule(&cost, &[1, 1])?;
/// let chart = render_gantt(&schedule, &cost, 40);
/// assert!(chart.contains("TAM 0"));
/// assert!(chart.contains("cpu"));
/// # Ok::<(), tam::ScheduleError>(())
/// ```
pub fn render_gantt(schedule: &Schedule, cost: &CostModel, columns: usize) -> String {
    assert!(columns >= 10, "need at least 10 columns");
    let makespan = schedule.makespan().max(1);
    let scale = |t: u64| -> usize { (t as u128 * columns as u128 / makespan as u128) as usize };

    let mut out = String::new();
    for (j, &w) in schedule.tam_widths().iter().enumerate() {
        let mut row = vec![b'.'; columns];
        let mut slots: Vec<_> = schedule.tests().iter().filter(|t| t.tam == j).collect();
        slots.sort_by_key(|t| t.start);
        for t in &slots {
            let a = scale(t.start).min(columns - 1);
            let b = scale(t.end()).clamp(a + 1, columns);
            let label = cost.name(t.core).as_bytes();
            for (k, cell) in row[a..b].iter_mut().enumerate() {
                *cell = if k == 0 {
                    b'|'
                } else if k - 1 < label.len() {
                    label[k - 1]
                } else {
                    b'='
                };
            }
        }
        out.push_str(&format!("TAM {j} (w={w:>2}) "));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>12} 0{:>width$}\n",
        "cycles:",
        makespan,
        width = columns
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;

    fn setup() -> (CostModel, Schedule) {
        let mut cost = CostModel::new(4);
        cost.push_core("alpha", vec![Some(400), Some(210), Some(150), Some(120)]);
        cost.push_core("beta", vec![Some(200), Some(105), Some(75), Some(60)]);
        cost.push_core("gamma", vec![Some(100), Some(55), Some(40), Some(35)]);
        let s = greedy_schedule(&cost, &[2, 2]).unwrap();
        (cost, s)
    }

    #[test]
    fn renders_one_row_per_tam_plus_axis() {
        let (cost, s) = setup();
        let chart = render_gantt(&s, &cost, 60);
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains("TAM 0"));
        assert!(chart.contains("TAM 1"));
        assert!(chart.contains("cycles:"));
    }

    #[test]
    fn labels_appear_in_rows() {
        let (cost, s) = setup();
        let chart = render_gantt(&s, &cost, 80);
        assert!(chart.contains("alph"), "chart:\n{chart}");
    }

    #[test]
    fn row_length_is_fixed() {
        let (cost, s) = setup();
        let chart = render_gantt(&s, &cost, 50);
        for line in chart.lines().take(2) {
            assert_eq!(line.len(), "TAM 0 (w= 2) ".len() + 50);
        }
    }

    #[test]
    fn empty_tams_render_as_idle_rows() {
        let mut cost = CostModel::new(2);
        cost.push_core("only", vec![Some(10), Some(5)]);
        let s = crate::greedy::greedy_schedule(&cost, &[1, 1]).unwrap();
        let chart = render_gantt(&s, &cost, 20);
        // One TAM hosts the core; the other is all idle dots.
        assert!(chart.lines().any(|l| l.ends_with(&".".repeat(20))));
    }

    #[test]
    #[should_panic(expected = "at least 10 columns")]
    fn narrow_chart_panics() {
        let (cost, s) = setup();
        render_gantt(&s, &cost, 5);
    }
}
