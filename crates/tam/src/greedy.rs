//! The paper's test-scheduling heuristic (§3, step 4).
//!
//! Given a fixed-width TAM partition, cores are sorted by test time
//! (longest first) and each is assigned to the TAM where the resulting
//! increase in SOC test time is least; ties go to the TAM with the smaller
//! finish time. Complexity `O(n·k)` for `n` cores and `k` TAMs, as in the
//! paper.

use robust::CancelToken;

use crate::cost::CostModel;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};

/// Schedules all cores of `cost` onto TAMs of the given `widths`, cores in
/// longest-test-first order.
///
/// # Errors
///
/// Returns [`ScheduleError::CoreUnschedulable`] when some core is
/// infeasible at every TAM width in the partition, and
/// [`ScheduleError::BadPartition`] when `widths` is empty or contains a
/// zero width.
pub fn greedy_schedule(cost: &CostModel, widths: &[u32]) -> Result<Schedule, ScheduleError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    }
    let order = longest_first_order(cost, widths);
    schedule_in_order(cost, widths, &order)
}

/// Cancellable variant of [`greedy_schedule`].
///
/// The pass itself is a bounded `O(n·k)` sweep, so the token is polled
/// once up front rather than per core: a tripped token refuses to start
/// new work, while work already under way finishes in bounded time.
///
/// # Errors
///
/// As [`greedy_schedule`], plus [`ScheduleError::Interrupted`] when the
/// token has already tripped — greedy produces no partial incumbent, so
/// the caller falls back to whatever schedule it already holds.
pub fn greedy_schedule_with(
    cost: &CostModel,
    widths: &[u32],
    token: &CancelToken,
) -> Result<Schedule, ScheduleError> {
    if token.is_cancelled() {
        return Err(ScheduleError::Interrupted);
    }
    greedy_schedule(cost, widths)
}

/// The paper's core ordering: longest test time first (each core judged at
/// its best width available in this partition).
pub fn longest_first_order(cost: &CostModel, widths: &[u32]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cost.core_count()).collect();
    let key = |i: usize| -> u64 {
        widths
            .iter()
            .filter_map(|&w| cost.time(i, w))
            .min()
            .unwrap_or(u64::MAX)
    };
    order.sort_by(|&a, &b| key(b).cmp(&key(a)).then(a.cmp(&b)));
    order
}

/// Schedules cores in the given order; exposed separately so ablation
/// benches can compare orderings.
///
/// # Errors
///
/// Same as [`greedy_schedule`]; additionally every core must appear in
/// `order` exactly once for the result to validate.
pub fn schedule_in_order(
    cost: &CostModel,
    widths: &[u32],
    order: &[usize],
) -> Result<Schedule, ScheduleError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    }
    let k = widths.len();
    let mut finish = vec![0u64; k];
    let mut tests = Vec::with_capacity(order.len());
    for &core in order {
        let mut best: Option<(usize, u64, u64)> = None; // (tam, new_finish, new_makespan)
        let current_makespan = finish.iter().copied().max().unwrap_or(0);
        for (j, &w) in widths.iter().enumerate() {
            let Some(d) = cost.time(core, w) else {
                continue;
            };
            let new_finish = finish[j] + d;
            let new_makespan = current_makespan.max(new_finish);
            let cand = (j, new_finish, new_makespan);
            let better = match &best {
                None => true,
                Some((_, bf, bm)) => {
                    new_makespan < *bm || (new_makespan == *bm && new_finish < *bf)
                }
            };
            if better {
                best = Some(cand);
            }
        }
        let Some((tam, new_finish, _)) = best else {
            return Err(ScheduleError::CoreUnschedulable { core });
        };
        tests.push(ScheduledTest {
            core,
            tam,
            start: finish[tam],
            duration: new_finish - finish[tam],
        });
        finish[tam] = new_finish;
    }
    Ok(Schedule::new(widths.to_vec(), tests))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        let mut m = CostModel::new(4);
        m.push_core("long", vec![Some(400), Some(220), Some(160), Some(130)]);
        m.push_core("mid", vec![Some(200), Some(110), Some(80), Some(65)]);
        m.push_core("short", vec![Some(60), Some(35), Some(25), Some(20)]);
        m.push_core("tiny", vec![Some(20), Some(12), Some(9), Some(8)]);
        m
    }

    #[test]
    fn produces_valid_schedule() {
        let c = cost();
        let s = greedy_schedule(&c, &[2, 2]).unwrap();
        s.validate(&c).unwrap();
        assert!(s.makespan() > 0);
    }

    #[test]
    fn longest_core_goes_first() {
        let c = cost();
        let order = longest_first_order(&c, &[2, 2]);
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn balances_across_tams() {
        let c = cost();
        let s = greedy_schedule(&c, &[2, 2]).unwrap();
        // long (220) on one TAM; mid (110) + short (35) + tiny (12) = 157 on
        // the other — makespan 220, not 377.
        assert_eq!(s.makespan(), 220);
    }

    #[test]
    fn single_tam_serializes_everything() {
        let c = cost();
        let s = greedy_schedule(&c, &[4]).unwrap();
        s.validate(&c).unwrap();
        assert_eq!(s.makespan(), 130 + 65 + 20 + 8);
    }

    #[test]
    fn infeasible_core_reported() {
        let mut m = CostModel::new(4);
        m.push_core("needs-wide", vec![None, None, None, Some(10)]);
        let err = greedy_schedule(&m, &[2, 2]).unwrap_err();
        assert_eq!(err, ScheduleError::CoreUnschedulable { core: 0 });
        // But a 4-wide TAM accommodates it.
        assert!(greedy_schedule(&m, &[4]).is_ok());
    }

    #[test]
    fn bad_partitions_rejected() {
        let c = cost();
        assert!(matches!(
            greedy_schedule(&c, &[]),
            Err(ScheduleError::BadPartition { .. })
        ));
        assert!(matches!(
            greedy_schedule(&c, &[2, 0]),
            Err(ScheduleError::BadPartition { .. })
        ));
    }

    #[test]
    fn custom_order_is_respected() {
        let c = cost();
        let s = schedule_in_order(&c, &[2, 2], &[3, 2, 1, 0]).unwrap();
        s.validate(&c).unwrap();
        // First scheduled core is `tiny` at time 0.
        let tiny = s.tests().iter().find(|t| t.core == 3).unwrap();
        assert_eq!(tiny.start, 0);
    }

    #[test]
    fn greedy_is_within_2x_of_lower_bound() {
        let c = cost();
        for widths in [vec![4], vec![2, 2], vec![1, 3], vec![1, 1, 2]] {
            let s = greedy_schedule(&c, &widths).unwrap();
            let lb = c.lower_bound(widths.iter().sum());
            assert!(
                s.makespan() <= 2 * lb + 1,
                "widths {widths:?}: makespan {} vs lower bound {lb}",
                s.makespan()
            );
        }
    }
}
