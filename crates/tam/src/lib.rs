//! Test access mechanism (TAM) design and SOC test scheduling.
//!
//! The top-level test-access wires of an SOC are partitioned into
//! fixed-width buses; each core is assigned to one bus and the cores on a
//! bus are tested serially. This crate provides the paper's scheduling
//! heuristic ([`greedy_schedule`]), the architecture optimizer that chooses
//! the partition ([`optimize_architecture`]), schedule validation, an ASCII
//! Gantt view ([`render_gantt`]), and a power-constrained scheduling
//! extension ([`power_aware_schedule`]).
//!
//! Test times come from a [`CostModel`] — one row per core, one column per
//! TAM width — so the same machinery serves plain wrapper designs,
//! per-core decompressors, and LFSR-reseeding compression alike.
//!
//! # Examples
//!
//! ```
//! use tam::{optimize_architecture, ArchitectureOptions, CostModel};
//!
//! // Four cores whose test time scales inversely with width.
//! let cost = CostModel::from_fn(&["a", "b", "c", "d"], 8, |i, w| {
//!     Some(10_000 * (i as u64 + 1) / u64::from(w))
//! });
//! let arch = optimize_architecture(&cost, 8, &ArchitectureOptions::default())?;
//! arch.schedule.validate(&cost)?;
//! assert!(arch.test_time >= cost.lower_bound(8));
//! # Ok::<(), tam::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod anneal;
mod conflict;
mod cost;
mod exhaustive;
mod gantt;
mod greedy;
mod multifreq;
mod optimize;
mod power;
mod precedence;
mod schedule;
mod search;
mod sweep;

pub use anneal::{anneal_architecture, anneal_architecture_with, AnnealOptions};
pub use conflict::{conflict_schedule, ConflictViolation, Conflicts};
pub use cost::CostModel;
pub use exhaustive::{exhaustive_architecture, exhaustive_architecture_with};
pub use gantt::render_gantt;
pub use greedy::{greedy_schedule, greedy_schedule_with, longest_first_order, schedule_in_order};
pub use multifreq::{multifreq_schedule, optimize_multifreq, validate_multifreq, FreqTam};
pub use optimize::{
    balanced_split, optimize_architecture, optimize_architecture_with, Architecture,
    ArchitectureOptions,
};
pub use power::{power_aware_schedule, PowerModel, PowerViolation};
pub use precedence::{precedence_schedule, Precedence, PrecedenceViolation};
pub use schedule::{Schedule, ScheduleError, ScheduledTest};
pub use search::{Search, SearchStatus};
