//! Multi-frequency TAM design (extension, after Xu & Nicolici — the
//! paper's reference [12]).
//!
//! TAMs need not all run at the ATE base rate: a bus clocked at `f×` the
//! base frequency shifts `f` bits per ATE cycle, cutting test time for the
//! cores on it — but each core caps the scan frequency it tolerates
//! (power, hold-time margins), so fast buses can only host fast cores.
//! This module schedules onto frequency-annotated TAMs and searches the
//! width *and* frequency assignment together.

use crate::cost::CostModel;
use crate::greedy::longest_first_order;
use crate::optimize::balanced_split;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};

/// One frequency-annotated TAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreqTam {
    /// Bus width in wires.
    pub width: u32,
    /// Clock multiplier relative to the ATE base rate (≥ 1).
    pub freq: u32,
}

/// Schedules all cores onto frequency-annotated TAMs: a core may only use
/// a TAM whose multiplier does not exceed the core's cap, and its test
/// time scales as `ceil(t / freq)` (measured in ATE base cycles).
///
/// # Errors
///
/// * [`ScheduleError::BadPartition`] — empty TAM list, zero width, or a
///   zero frequency.
/// * [`ScheduleError::CoreUnschedulable`] — a core has no compatible TAM.
///
/// # Panics
///
/// Panics if `core_max_freq.len() != cost.core_count()`.
pub fn multifreq_schedule(
    cost: &CostModel,
    tams: &[FreqTam],
    core_max_freq: &[u32],
) -> Result<Schedule, ScheduleError> {
    assert_eq!(
        core_max_freq.len(),
        cost.core_count(),
        "one frequency cap per core"
    );
    if tams.is_empty() || tams.iter().any(|t| t.width == 0 || t.freq == 0) {
        return Err(ScheduleError::BadPartition {
            total_width: tams.iter().map(|t| t.width).sum(),
            tams: tams.len() as u32,
        });
    }
    let widths: Vec<u32> = tams.iter().map(|t| t.width).collect();
    let order = longest_first_order(cost, &widths);
    let mut finish = vec![0u64; tams.len()];
    let mut tests = Vec::with_capacity(order.len());
    for &core in &order {
        let mut best: Option<(usize, u64, u64)> = None;
        let current = finish.iter().copied().max().unwrap_or(0);
        for (j, tam) in tams.iter().enumerate() {
            if tam.freq > core_max_freq[core] {
                continue;
            }
            let Some(t) = cost.time(core, tam.width) else {
                continue;
            };
            let d = t.div_ceil(u64::from(tam.freq));
            let new_finish = finish[j] + d;
            let new_makespan = current.max(new_finish);
            if best
                .as_ref()
                .is_none_or(|&(_, bf, bm)| (new_makespan, new_finish) < (bm, bf))
            {
                best = Some((j, new_finish, new_makespan));
            }
        }
        let Some((tam, new_finish, _)) = best else {
            return Err(ScheduleError::CoreUnschedulable { core });
        };
        tests.push(ScheduledTest {
            core,
            tam,
            start: finish[tam],
            duration: new_finish - finish[tam],
        });
        finish[tam] = new_finish;
    }
    Ok(Schedule::new(widths, tests))
}

/// Validates a multi-frequency schedule: structure, durations
/// (`ceil(t/f)`), and frequency caps.
///
/// # Errors
///
/// The first violated invariant, reusing [`ScheduleError`] variants.
pub fn validate_multifreq(
    schedule: &Schedule,
    cost: &CostModel,
    tams: &[FreqTam],
    core_max_freq: &[u32],
) -> Result<(), ScheduleError> {
    for test in schedule.tests() {
        let Some(tam) = tams.get(test.tam) else {
            return Err(ScheduleError::UnknownTam {
                core: test.core,
                tam: test.tam,
            });
        };
        if tam.freq > core_max_freq[test.core] {
            return Err(ScheduleError::InfeasibleWidth {
                core: test.core,
                width: tam.width,
            });
        }
        match cost.time(test.core, tam.width) {
            Some(t) if t.div_ceil(u64::from(tam.freq)) == test.duration => {}
            Some(t) => {
                return Err(ScheduleError::WrongDuration {
                    core: test.core,
                    expected: t.div_ceil(u64::from(tam.freq)),
                    found: test.duration,
                });
            }
            None => {
                return Err(ScheduleError::InfeasibleWidth {
                    core: test.core,
                    width: tam.width,
                });
            }
        }
    }
    // Reuse the overlap/coverage checks with a duration-agnostic model:
    // rebuild the per-TAM timeline manually.
    let mut seen = vec![false; cost.core_count()];
    for t in schedule.tests() {
        if seen[t.core] {
            return Err(ScheduleError::DuplicateCore { core: t.core });
        }
        seen[t.core] = true;
    }
    if let Some(core) = seen.iter().position(|&s| !s) {
        return Err(ScheduleError::MissingCore { core });
    }
    for tam in 0..tams.len() {
        let mut slots: Vec<&ScheduledTest> =
            schedule.tests().iter().filter(|t| t.tam == tam).collect();
        slots.sort_by_key(|t| t.start);
        for pair in slots.windows(2) {
            if pair[0].end() > pair[1].start {
                return Err(ScheduleError::Overlap {
                    tam,
                    first: pair[0].core,
                    second: pair[1].core,
                });
            }
        }
    }
    Ok(())
}

/// Searches widths *and* per-TAM frequency multipliers for the best
/// multi-frequency architecture: every TAM count up to the budget, every
/// uniform frequency, and (for up to three TAMs) every mixed assignment
/// from `freq_options`.
///
/// # Errors
///
/// Propagates the scheduling errors; fails only when no combination can
/// host every core.
///
/// # Panics
///
/// Panics if `freq_options` is empty or `core_max_freq.len()` differs from
/// the core count.
pub fn optimize_multifreq(
    cost: &CostModel,
    total_width: u32,
    freq_options: &[u32],
    core_max_freq: &[u32],
) -> Result<(Vec<FreqTam>, Schedule), ScheduleError> {
    assert!(
        !freq_options.is_empty(),
        "need at least one frequency option"
    );
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let k_max = total_width.min(cost.core_count() as u32).max(1);
    let mut best: Option<(Vec<FreqTam>, Schedule, u64)> = None;
    let mut first_err: Option<ScheduleError> = None;

    for k in 1..=k_max {
        let widths = balanced_split(total_width, k);
        let combos = freq_combos(freq_options, k as usize);
        for freqs in combos {
            let tams: Vec<FreqTam> = widths
                .iter()
                .zip(&freqs)
                .map(|(&width, &freq)| FreqTam { width, freq })
                .collect();
            match multifreq_schedule(cost, &tams, core_max_freq) {
                Ok(s) => {
                    let m = s.makespan();
                    if best.as_ref().is_none_or(|&(_, _, bm)| m < bm) {
                        best = Some((tams, s, m));
                    }
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
    }
    match best {
        Some((tams, s, _)) => Ok((tams, s)),
        None => Err(first_err.expect("at least one combination attempted")),
    }
}

/// All per-TAM frequency assignments for small `k`; uniform assignments
/// otherwise (keeps the search polynomial).
fn freq_combos(options: &[u32], k: usize) -> Vec<Vec<u32>> {
    if k <= 3 {
        let mut out = vec![Vec::new()];
        for _ in 0..k {
            out = out
                .into_iter()
                .flat_map(|prefix| {
                    options.iter().map(move |&f| {
                        let mut v = prefix.clone();
                        v.push(f);
                        v
                    })
                })
                .collect();
        }
        out
    } else {
        options.iter().map(|&f| vec![f; k]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 8, |i, w| {
            Some(9_600 * (i as u64 + 1) / u64::from(w))
        })
    }

    #[test]
    fn faster_buses_cut_time() {
        let c = cost();
        let caps = vec![4, 4, 4, 4];
        let slow = multifreq_schedule(&c, &[FreqTam { width: 8, freq: 1 }], &caps).unwrap();
        let fast = multifreq_schedule(&c, &[FreqTam { width: 8, freq: 4 }], &caps).unwrap();
        validate_multifreq(&fast, &c, &[FreqTam { width: 8, freq: 4 }], &caps).unwrap();
        assert!(fast.makespan() * 3 < slow.makespan());
    }

    #[test]
    fn capped_cores_avoid_fast_buses() {
        let c = cost();
        // Core 3 (the longest) tolerates only 1×.
        let caps = vec![4, 4, 4, 1];
        let tams = [FreqTam { width: 4, freq: 4 }, FreqTam { width: 4, freq: 1 }];
        let s = multifreq_schedule(&c, &tams, &caps).unwrap();
        validate_multifreq(&s, &c, &tams, &caps).unwrap();
        let slot = s.tests().iter().find(|t| t.core == 3).unwrap();
        assert_eq!(slot.tam, 1, "capped core must use the slow bus");
    }

    #[test]
    fn all_fast_buses_reject_capped_cores() {
        let c = cost();
        let caps = vec![4, 4, 4, 1];
        let err = multifreq_schedule(&c, &[FreqTam { width: 8, freq: 2 }], &caps).unwrap_err();
        assert_eq!(err, ScheduleError::CoreUnschedulable { core: 3 });
    }

    #[test]
    fn optimizer_mixes_frequencies_when_caps_demand_it() {
        let c = cost();
        let caps = vec![4, 4, 4, 1];
        let (tams, s) = optimize_multifreq(&c, 8, &[1, 2, 4], &caps).unwrap();
        validate_multifreq(&s, &c, &tams, &caps).unwrap();
        // A single-frequency plan is limited by the capped core; the mixed
        // plan must beat uniform 1×.
        let uniform = multifreq_schedule(&c, &[FreqTam { width: 8, freq: 1 }], &caps).unwrap();
        assert!(s.makespan() < uniform.makespan());
        assert!(tams.iter().any(|t| t.freq > 1), "should use a fast bus");
        assert!(
            tams.iter().any(|t| t.freq == 1),
            "capped core needs a slow bus"
        );
    }

    #[test]
    fn validator_rejects_cap_violations_and_bad_durations() {
        let c = cost();
        let caps = vec![1, 4, 4, 4];
        let tams = [FreqTam { width: 8, freq: 2 }];
        let bad = Schedule::new(
            vec![8],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 600,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 600,
                    duration: 1200,
                },
                ScheduledTest {
                    core: 2,
                    tam: 0,
                    start: 1800,
                    duration: 1800,
                },
                ScheduledTest {
                    core: 3,
                    tam: 0,
                    start: 3600,
                    duration: 2400,
                },
            ],
        );
        assert!(matches!(
            validate_multifreq(&bad, &c, &tams, &caps),
            Err(ScheduleError::InfeasibleWidth { core: 0, .. })
        ));

        let caps_ok = vec![4, 4, 4, 4];
        let wrong = Schedule::new(
            vec![8],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 601,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 601,
                    duration: 1200,
                },
                ScheduledTest {
                    core: 2,
                    tam: 0,
                    start: 1801,
                    duration: 1800,
                },
                ScheduledTest {
                    core: 3,
                    tam: 0,
                    start: 3601,
                    duration: 2400,
                },
            ],
        );
        assert!(matches!(
            validate_multifreq(&wrong, &c, &tams, &caps_ok),
            Err(ScheduleError::WrongDuration { core: 0, .. })
        ));
    }

    #[test]
    fn freq_combos_enumerate_small_and_collapse_large() {
        assert_eq!(freq_combos(&[1, 2], 2).len(), 4);
        assert_eq!(freq_combos(&[1, 2, 4], 3).len(), 27);
        assert_eq!(freq_combos(&[1, 2, 4], 5).len(), 3);
    }

    #[test]
    fn durations_use_ceiling_division() {
        let mut m = CostModel::new(2);
        m.push_core("odd", vec![Some(7), Some(7)]);
        let tams = [FreqTam { width: 2, freq: 2 }];
        let s = multifreq_schedule(&m, &tams, &[2]).unwrap();
        assert_eq!(s.tests()[0].duration, 4); // ceil(7/2)
        validate_multifreq(&s, &m, &tams, &[2]).unwrap();
    }
}
