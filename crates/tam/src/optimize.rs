//! Test-architecture design (paper §3, step 3): choosing how many TAMs to
//! build and how to split the wire budget among them.
//!
//! For every TAM count `k`, the optimizer starts from a balanced split of
//! the budget and then hill-climbs: wires are moved one at a time from
//! under-utilized TAMs to the bottleneck TAM as long as the schedule
//! improves (the TR-Architect idea of Goel & Marinissen, adapted to the
//! lookup-table cost model). The best architecture over all `k` wins.
//!
//! The per-`k` climbs are independent, so they run as a deterministic
//! portfolio on a [`parpool::Pool`]: `k = 1` is evaluated inline first (an
//! expired deadline still yields the single-TAM baseline), the remaining
//! `k` fan out as pool tasks, and the results reduce by the fixed
//! tie-break `(test_time, k, widths)` — identical winner at any worker
//! count. A shared atomic incumbent feeds two prunes that never change the
//! winner (see [`CostModel::lower_bound_for_k`] and
//! [`GreedySweep`](crate::sweep::GreedySweep)): `k` values whose lower
//! bound exceeds an achieved incumbent are skipped, and candidate-move
//! sweeps abort once their partial bottleneck proves them non-improving.

use std::sync::atomic::Ordering;

use parpool::{dsan, Pool};
use robust::CancelToken;

use crate::cost::CostModel;
use crate::greedy::greedy_schedule;
use crate::schedule::{Schedule, ScheduleError};
use crate::search::{Search, SearchStatus};
use crate::sweep::{GreedySweep, SweepOutcome};

/// Options for [`optimize_architecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchitectureOptions {
    /// Cap on the number of TAMs explored (default: no cap beyond
    /// `min(cores, wires)`).
    pub max_tams: Option<u32>,
    /// Cap on hill-climbing steps per TAM count (default 64; each step
    /// reschedules once per donor TAM).
    pub refine_steps: u32,
    /// Worker threads for the per-`k` portfolio (default: one per
    /// hardware thread). The result is identical at any worker count.
    pub workers: Option<usize>,
    /// Skip `k` values whose lower bound already exceeds the incumbent
    /// (default on; never changes the result — see
    /// [`CostModel::lower_bound_for_k`]).
    pub prune: bool,
}

impl Default for ArchitectureOptions {
    fn default() -> Self {
        ArchitectureOptions {
            max_tams: None,
            refine_steps: 64,
            workers: None,
            prune: true,
        }
    }
}

/// An optimized test architecture: the partition, its schedule, and the
/// resulting SOC test time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    /// The winning schedule (carries the TAM widths).
    pub schedule: Schedule,
    /// SOC test time in clock cycles (the schedule's makespan).
    pub test_time: u64,
}

/// Splits `total_width` wires into `k` TAMs and assigns/schedules all cores,
/// minimizing SOC test time over both the split and the assignment.
///
/// # Errors
///
/// Returns [`ScheduleError::BadPartition`] when `total_width == 0`, and
/// [`ScheduleError::CoreUnschedulable`] when some core cannot be tested
/// even on a single TAM of the full budget.
pub fn optimize_architecture(
    cost: &CostModel,
    total_width: u32,
    opts: &ArchitectureOptions,
) -> Result<Architecture, ScheduleError> {
    optimize_architecture_with(cost, total_width, opts, &CancelToken::never())
        .map(|search| search.architecture)
}

/// Cancellable variant of [`optimize_architecture`].
///
/// Polls `token` between TAM counts and hill-climbing steps. When the
/// token trips, the search returns its best architecture so far with
/// [`SearchStatus::Interrupted`].
///
/// # Errors
///
/// As [`optimize_architecture`], plus [`ScheduleError::Interrupted`] when
/// the token trips before even the first greedy schedule exists.
pub fn optimize_architecture_with(
    cost: &CostModel,
    total_width: u32,
    opts: &ArchitectureOptions,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let k_max = total_width
        .min(cost.core_count() as u32)
        .min(opts.max_tams.unwrap_or(u32::MAX))
        .max(1);

    // Any published value is the makespan of an architecture some task
    // actually built, so the eventual winner's time is never above it —
    // pruning against it can only discard strictly worse candidates. The
    // dsan shadow is advisory: cross-task timing on this cell is benign
    // by the same argument.
    let incumbent =
        dsan::AtomicCell::new("tam.portfolio.incumbent", dsan::Policy::Advisory, u64::MAX);

    // k = 1 runs inline first so an expired deadline still yields the
    // single-TAM baseline rather than nothing at all (it also seeds the
    // incumbent for the pruned portfolio).
    let mut outcomes: Vec<KOutcome> = Vec::with_capacity(k_max as usize);
    outcomes.push(KOutcome::Done(optimize_for_k(
        cost,
        total_width,
        1,
        opts.refine_steps,
        token,
        &incumbent,
    )));
    if k_max > 1 {
        let pool = match opts.workers {
            Some(w) => Pool::with_workers(w),
            None => Pool::new(),
        }
        .labeled("portfolio");
        let tasks: Vec<_> = (2..=k_max)
            .map(|k| {
                let incumbent = &incumbent;
                move || {
                    if opts.prune
                        && cost.lower_bound_for_k(total_width, k)
                            // soclint: allow(relaxed-ordering) -- pruning bound only: a stale read keeps a k the exact pass would skip, which costs time but cannot change the selected plan
                            > incumbent.load(Ordering::Relaxed)
                    {
                        return KOutcome::Pruned;
                    }
                    KOutcome::Done(optimize_for_k(
                        cost,
                        total_width,
                        k,
                        opts.refine_steps,
                        token,
                        incumbent,
                    ))
                }
            })
            .collect();
        for outcome in pool.run_with(token, tasks) {
            // A task skipped after cancellation counts as interrupted.
            outcomes.push(outcome.unwrap_or(KOutcome::Skipped));
        }
    }

    // Deterministic reduction in k order with the fixed tie-break
    // (test_time, k, widths): the winner is identical at any worker count
    // and to the sequential sweep.
    let mut best: Option<(u64, u32, KResult)> = None;
    let mut first_error: Option<ScheduleError> = None;
    let mut status = SearchStatus::Complete;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let k = i as u32 + 1;
        match outcome {
            KOutcome::Skipped => status = SearchStatus::Interrupted,
            KOutcome::Pruned => {}
            KOutcome::Done(Err(e)) => {
                first_error.get_or_insert(e);
            }
            KOutcome::Done(Ok(r)) => {
                if r.status == SearchStatus::Interrupted {
                    status = SearchStatus::Interrupted;
                }
                let better = best
                    .as_ref()
                    .is_none_or(|(bt, bk, br)| (r.makespan, k, &r.widths) < (*bt, *bk, &br.widths));
                if better {
                    best = Some((r.makespan, k, r));
                }
            }
        }
    }
    match best {
        Some((test_time, _, r)) => {
            // Only the winner pays for a materialized schedule; its
            // feasibility was certified by the exact sweep.
            let schedule = greedy_schedule(cost, &r.widths)
                .expect("winning partition re-schedules identically");
            debug_assert_eq!(schedule.makespan(), test_time);
            Ok(Search {
                architecture: Architecture {
                    test_time,
                    schedule,
                },
                status,
            })
        }
        None => Err(first_error.expect("at least one k was attempted")),
    }
}

/// Result of one per-`k` hill-climb: the partition and its makespan. The
/// schedule is only materialized for the reduction winner.
struct KResult {
    widths: Vec<u32>,
    makespan: u64,
    status: SearchStatus,
}

enum KOutcome {
    Done(Result<KResult, ScheduleError>),
    /// Lower bound above the incumbent: running the climb could not have
    /// produced the winner, so it was skipped.
    Pruned,
    /// The pool never started this task (cancellation).
    Skipped,
}

fn optimize_for_k(
    cost: &CostModel,
    total_width: u32,
    k: u32,
    refine_steps: u32,
    token: &CancelToken,
    incumbent: &dsan::AtomicCell,
) -> Result<KResult, ScheduleError> {
    let mut widths = balanced_split(total_width, k);
    let mut sweep = GreedySweep::new(cost);
    sweep.reset(&widths);
    let mut makespan = match sweep.run(&widths, None) {
        SweepOutcome::Exact(m) => m,
        SweepOutcome::Infeasible(core) => return Err(ScheduleError::CoreUnschedulable { core }),
        SweepOutcome::Cutoff => unreachable!("unbounded run cannot cut off"),
    };
    // soclint: allow(relaxed-ordering) -- publishes a pruning bound other tasks may or may not see in time; plan selection is the deterministic index-ordered reduction downstream
    incumbent.fetch_min(makespan, Ordering::Relaxed);
    let mut status = SearchStatus::Complete;

    for _ in 0..refine_steps {
        if token.is_cancelled() {
            status = SearchStatus::Interrupted;
            break;
        }
        // Move one wire from each possible donor to the bottleneck TAM and
        // keep the best strictly improving move. Candidates are evaluated
        // in place — apply the move to the sweep state, run bounded,
        // revert — instead of cloning the partition and rescheduling from
        // scratch; the bound makes non-improving donors abort early.
        let bottleneck = (0..widths.len())
            .max_by_key(|&j| sweep.finishes()[j])
            .expect("k >= 1");
        let mut improved: Option<(usize, u64)> = None; // (donor, makespan)
        for donor in 0..widths.len() {
            if donor == bottleneck || widths[donor] <= 1 {
                continue;
            }
            let (wd, wb) = (widths[donor], widths[bottleneck]);
            widths[donor] -= 1;
            widths[bottleneck] += 1;
            sweep.apply(&[wd, wb], &[wd - 1, wb + 1]);
            // Exact results are always < bound, so this keeps exactly the
            // strictly improving moves, ties to the earliest donor.
            let bound = improved.map_or(makespan, |(_, bm)| bm.min(makespan));
            let outcome = sweep.run(&widths, Some(bound));
            widths[donor] += 1;
            widths[bottleneck] -= 1;
            sweep.apply(&[wd - 1, wb + 1], &[wd, wb]);
            if let SweepOutcome::Exact(m) = outcome {
                improved = Some((donor, m));
            }
        }
        match improved {
            Some((donor, m)) => {
                let (wd, wb) = (widths[donor], widths[bottleneck]);
                widths[donor] -= 1;
                widths[bottleneck] += 1;
                sweep.apply(&[wd, wb], &[wd - 1, wb + 1]);
                // Unbounded re-run refreshes the finish times for the next
                // bottleneck pick.
                let refreshed = sweep.run(&widths, None);
                debug_assert_eq!(refreshed, SweepOutcome::Exact(m));
                makespan = m;
                // soclint: allow(relaxed-ordering) -- same advisory pruning bound as above; never read back into this task's own result
                incumbent.fetch_min(makespan, Ordering::Relaxed);
            }
            None => break,
        }
    }
    Ok(KResult {
        widths,
        makespan,
        status,
    })
}

/// Splits `total` wires into `k` TAMs whose widths differ by at most one.
///
/// # Panics
///
/// Panics if `k == 0` or `k > total`.
pub fn balanced_split(total: u32, k: u32) -> Vec<u32> {
    assert!(
        k > 0 && k <= total,
        "cannot split {total} wires into {k} TAMs"
    );
    let base = total / k;
    let extra = total % k;
    (0..k)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d", "e", "f"], 16, |i, w| {
            let work = 20_000 * (i as u64 + 1);
            Some(work / u64::from(w) + 50)
        })
    }

    #[test]
    fn finds_valid_architecture() {
        let c = cost();
        let arch = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        arch.schedule.validate(&c).unwrap();
        assert_eq!(arch.test_time, arch.schedule.makespan());
        assert_eq!(arch.schedule.total_width(), 12);
    }

    #[test]
    fn beats_or_matches_single_tam() {
        let c = cost();
        let single = greedy_schedule(&c, &[12]).unwrap().makespan();
        let arch = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        assert!(arch.test_time <= single);
    }

    #[test]
    fn wider_budget_never_hurts() {
        let c = cost();
        let opts = ArchitectureOptions::default();
        let t16 = optimize_architecture(&c, 16, &opts).unwrap().test_time;
        let t8 = optimize_architecture(&c, 8, &opts).unwrap().test_time;
        assert!(t16 <= t8, "16 wires: {t16}, 8 wires: {t8}");
    }

    #[test]
    fn close_to_lower_bound_on_divisible_work() {
        let c = cost();
        let arch = optimize_architecture(&c, 16, &ArchitectureOptions::default()).unwrap();
        let lb = c.lower_bound(16);
        assert!(
            arch.test_time <= lb * 2,
            "test time {} vs lower bound {lb}",
            arch.test_time
        );
    }

    #[test]
    fn respects_max_tams() {
        let c = cost();
        let arch = optimize_architecture(
            &c,
            12,
            &ArchitectureOptions {
                max_tams: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(arch.schedule.tam_widths().len() <= 2);
    }

    #[test]
    fn zero_budget_is_an_error() {
        assert!(matches!(
            optimize_architecture(&cost(), 0, &ArchitectureOptions::default()),
            Err(ScheduleError::BadPartition { .. })
        ));
    }

    #[test]
    fn infeasible_core_propagates() {
        let mut m = CostModel::new(8);
        m.push_core(
            "wide-only",
            vec![None, None, None, None, None, None, None, Some(5)],
        );
        m.push_core("easy", vec![Some(10); 8]);
        // Budget 8: k = 1 hosts both; must succeed.
        let arch = optimize_architecture(&m, 8, &ArchitectureOptions::default()).unwrap();
        arch.schedule.validate(&m).unwrap();
        // Budget 4: no TAM can ever reach width 8.
        assert!(matches!(
            optimize_architecture(&m, 4, &ArchitectureOptions::default()),
            Err(ScheduleError::CoreUnschedulable { core: 0 })
        ));
    }

    #[test]
    fn expired_deadline_still_yields_single_tam_baseline() {
        let c = cost();
        let token = robust::CancelToken::expiring_in(std::time::Duration::ZERO);
        let search =
            optimize_architecture_with(&c, 12, &ArchitectureOptions::default(), &token).unwrap();
        assert_eq!(search.status, crate::SearchStatus::Interrupted);
        search.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn never_token_matches_plain_optimizer() {
        let c = cost();
        let plain = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        let with = optimize_architecture_with(
            &c,
            12,
            &ArchitectureOptions::default(),
            &robust::CancelToken::never(),
        )
        .unwrap();
        assert!(with.is_complete());
        assert_eq!(with.architecture, plain);
    }

    #[test]
    fn balanced_split_properties() {
        assert_eq!(balanced_split(12, 3), vec![4, 4, 4]);
        assert_eq!(balanced_split(13, 3), vec![5, 4, 4]);
        assert_eq!(balanced_split(5, 5), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn balanced_split_rejects_excess_tams() {
        balanced_split(3, 4);
    }
}
