//! Test-architecture design (paper §3, step 3): choosing how many TAMs to
//! build and how to split the wire budget among them.
//!
//! For every TAM count `k`, the optimizer starts from a balanced split of
//! the budget and then hill-climbs: wires are moved one at a time from
//! under-utilized TAMs to the bottleneck TAM as long as the schedule
//! improves (the TR-Architect idea of Goel & Marinissen, adapted to the
//! lookup-table cost model). The best architecture over all `k` wins.

use robust::CancelToken;

use crate::cost::CostModel;
use crate::greedy::greedy_schedule;
use crate::schedule::{Schedule, ScheduleError};
use crate::search::{Search, SearchStatus};

/// Options for [`optimize_architecture`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchitectureOptions {
    /// Cap on the number of TAMs explored (default: no cap beyond
    /// `min(cores, wires)`).
    pub max_tams: Option<u32>,
    /// Cap on hill-climbing steps per TAM count (default 64; each step
    /// reschedules once per donor TAM).
    pub refine_steps: u32,
}

impl Default for ArchitectureOptions {
    fn default() -> Self {
        ArchitectureOptions {
            max_tams: None,
            refine_steps: 64,
        }
    }
}

/// An optimized test architecture: the partition, its schedule, and the
/// resulting SOC test time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    /// The winning schedule (carries the TAM widths).
    pub schedule: Schedule,
    /// SOC test time in clock cycles (the schedule's makespan).
    pub test_time: u64,
}

/// Splits `total_width` wires into `k` TAMs and assigns/schedules all cores,
/// minimizing SOC test time over both the split and the assignment.
///
/// # Errors
///
/// Returns [`ScheduleError::BadPartition`] when `total_width == 0`, and
/// [`ScheduleError::CoreUnschedulable`] when some core cannot be tested
/// even on a single TAM of the full budget.
pub fn optimize_architecture(
    cost: &CostModel,
    total_width: u32,
    opts: &ArchitectureOptions,
) -> Result<Architecture, ScheduleError> {
    optimize_architecture_with(cost, total_width, opts, &CancelToken::never())
        .map(|search| search.architecture)
}

/// Cancellable variant of [`optimize_architecture`].
///
/// Polls `token` between TAM counts and hill-climbing steps. When the
/// token trips, the search returns its best architecture so far with
/// [`SearchStatus::Interrupted`].
///
/// # Errors
///
/// As [`optimize_architecture`], plus [`ScheduleError::Interrupted`] when
/// the token trips before even the first greedy schedule exists.
pub fn optimize_architecture_with(
    cost: &CostModel,
    total_width: u32,
    opts: &ArchitectureOptions,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    if total_width == 0 {
        return Err(ScheduleError::BadPartition {
            total_width,
            tams: 0,
        });
    }
    let k_max = total_width
        .min(cost.core_count() as u32)
        .min(opts.max_tams.unwrap_or(u32::MAX))
        .max(1);

    let mut best: Option<Architecture> = None;
    let mut first_error: Option<ScheduleError> = None;
    let mut status = SearchStatus::Complete;
    for k in 1..=k_max {
        // Always evaluate k = 1 so an expired deadline still yields the
        // single-TAM baseline rather than nothing at all.
        if k > 1 && token.is_cancelled() {
            status = SearchStatus::Interrupted;
            break;
        }
        match optimize_for_k(cost, total_width, k, opts.refine_steps, token) {
            Ok(search) => {
                if status == SearchStatus::Complete {
                    status = search.status;
                }
                let arch = search.architecture;
                if best.as_ref().is_none_or(|b| arch.test_time < b.test_time) {
                    best = Some(arch);
                }
            }
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
    }
    match best {
        Some(architecture) => Ok(Search {
            architecture,
            status,
        }),
        None => Err(first_error.expect("at least one k was attempted")),
    }
}

fn optimize_for_k(
    cost: &CostModel,
    total_width: u32,
    k: u32,
    refine_steps: u32,
    token: &CancelToken,
) -> Result<Search, ScheduleError> {
    let mut widths = balanced_split(total_width, k);
    let mut schedule = greedy_schedule(cost, &widths)?;
    let mut makespan = schedule.makespan();
    let mut status = SearchStatus::Complete;

    for _ in 0..refine_steps {
        if token.is_cancelled() {
            status = SearchStatus::Interrupted;
            break;
        }
        // Move one wire from each possible donor to the bottleneck TAM and
        // keep the best strictly improving move.
        let bottleneck = (0..widths.len())
            .max_by_key(|&j| schedule.tam_finish(j))
            .expect("k >= 1");
        let mut improved: Option<(Vec<u32>, Schedule, u64)> = None;
        for donor in 0..widths.len() {
            if donor == bottleneck || widths[donor] <= 1 {
                continue;
            }
            let mut candidate = widths.clone();
            candidate[donor] -= 1;
            candidate[bottleneck] += 1;
            let Ok(s) = greedy_schedule(cost, &candidate) else {
                continue;
            };
            let m = s.makespan();
            if m < makespan && improved.as_ref().is_none_or(|(_, _, bm)| m < *bm) {
                improved = Some((candidate, s, m));
            }
        }
        match improved {
            Some((w, s, m)) => {
                widths = w;
                schedule = s;
                makespan = m;
            }
            None => break,
        }
    }
    let architecture = Architecture {
        test_time: makespan,
        schedule,
    };
    Ok(Search {
        architecture,
        status,
    })
}

/// Splits `total` wires into `k` TAMs whose widths differ by at most one.
///
/// # Panics
///
/// Panics if `k == 0` or `k > total`.
pub fn balanced_split(total: u32, k: u32) -> Vec<u32> {
    assert!(
        k > 0 && k <= total,
        "cannot split {total} wires into {k} TAMs"
    );
    let base = total / k;
    let extra = total % k;
    (0..k)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d", "e", "f"], 16, |i, w| {
            let work = 20_000 * (i as u64 + 1);
            Some(work / u64::from(w) + 50)
        })
    }

    #[test]
    fn finds_valid_architecture() {
        let c = cost();
        let arch = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        arch.schedule.validate(&c).unwrap();
        assert_eq!(arch.test_time, arch.schedule.makespan());
        assert_eq!(arch.schedule.total_width(), 12);
    }

    #[test]
    fn beats_or_matches_single_tam() {
        let c = cost();
        let single = greedy_schedule(&c, &[12]).unwrap().makespan();
        let arch = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        assert!(arch.test_time <= single);
    }

    #[test]
    fn wider_budget_never_hurts() {
        let c = cost();
        let opts = ArchitectureOptions::default();
        let t16 = optimize_architecture(&c, 16, &opts).unwrap().test_time;
        let t8 = optimize_architecture(&c, 8, &opts).unwrap().test_time;
        assert!(t16 <= t8, "16 wires: {t16}, 8 wires: {t8}");
    }

    #[test]
    fn close_to_lower_bound_on_divisible_work() {
        let c = cost();
        let arch = optimize_architecture(&c, 16, &ArchitectureOptions::default()).unwrap();
        let lb = c.lower_bound(16);
        assert!(
            arch.test_time <= lb * 2,
            "test time {} vs lower bound {lb}",
            arch.test_time
        );
    }

    #[test]
    fn respects_max_tams() {
        let c = cost();
        let arch = optimize_architecture(
            &c,
            12,
            &ArchitectureOptions {
                max_tams: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(arch.schedule.tam_widths().len() <= 2);
    }

    #[test]
    fn zero_budget_is_an_error() {
        assert!(matches!(
            optimize_architecture(&cost(), 0, &ArchitectureOptions::default()),
            Err(ScheduleError::BadPartition { .. })
        ));
    }

    #[test]
    fn infeasible_core_propagates() {
        let mut m = CostModel::new(8);
        m.push_core(
            "wide-only",
            vec![None, None, None, None, None, None, None, Some(5)],
        );
        m.push_core("easy", vec![Some(10); 8]);
        // Budget 8: k = 1 hosts both; must succeed.
        let arch = optimize_architecture(&m, 8, &ArchitectureOptions::default()).unwrap();
        arch.schedule.validate(&m).unwrap();
        // Budget 4: no TAM can ever reach width 8.
        assert!(matches!(
            optimize_architecture(&m, 4, &ArchitectureOptions::default()),
            Err(ScheduleError::CoreUnschedulable { core: 0 })
        ));
    }

    #[test]
    fn expired_deadline_still_yields_single_tam_baseline() {
        let c = cost();
        let token = robust::CancelToken::expiring_in(std::time::Duration::ZERO);
        let search =
            optimize_architecture_with(&c, 12, &ArchitectureOptions::default(), &token).unwrap();
        assert_eq!(search.status, crate::SearchStatus::Interrupted);
        search.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn never_token_matches_plain_optimizer() {
        let c = cost();
        let plain = optimize_architecture(&c, 12, &ArchitectureOptions::default()).unwrap();
        let with = optimize_architecture_with(
            &c,
            12,
            &ArchitectureOptions::default(),
            &robust::CancelToken::never(),
        )
        .unwrap();
        assert!(with.is_complete());
        assert_eq!(with.architecture, plain);
    }

    #[test]
    fn balanced_split_properties() {
        assert_eq!(balanced_split(12, 3), vec![4, 4, 4]);
        assert_eq!(balanced_split(13, 3), vec![5, 4, 4]);
        assert_eq!(balanced_split(5, 5), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn balanced_split_rejects_excess_tams() {
        balanced_split(3, 4);
    }
}
