//! Power-constrained test scheduling (extension).
//!
//! Scan testing dissipates far more power than functional operation, so
//! SOCs often cap the set of cores that may be tested concurrently. This
//! module extends the paper's scheduler with a peak-power budget (in the
//! spirit of the Larsson-group follow-on work on power-constrained SOC test
//! scheduling): tests are still serial per TAM, but a test's start may be
//! delayed until enough power headroom exists across the whole SOC.

use crate::cost::CostModel;
use crate::greedy::longest_first_order;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};

/// Per-core test power figures and the SOC-wide budget (arbitrary units —
/// only ratios matter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerModel {
    per_core: Vec<u64>,
    budget: u64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if any single core exceeds the budget (it could never be
    /// scheduled) or the budget is zero.
    pub fn new(per_core: Vec<u64>, budget: u64) -> Self {
        assert!(budget > 0, "power budget must be positive");
        assert!(
            per_core.iter().all(|&p| p <= budget),
            "a core exceeds the power budget on its own"
        );
        PowerModel { per_core, budget }
    }

    /// Test power of core `core`.
    pub fn power(&self, core: usize) -> u64 {
        self.per_core[core]
    }

    /// The SOC-wide peak-power budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Peak concurrent power of `schedule` under this model.
    pub fn peak_power(&self, schedule: &Schedule) -> u64 {
        let mut events: Vec<(u64, i64)> = Vec::new();
        for t in schedule.tests() {
            let p = self.per_core[t.core] as i64;
            events.push((t.start, p));
            events.push((t.end(), -p));
        }
        // Ends before starts at the same instant: a test ending at t frees
        // its power for a test starting at t.
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut current = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            current += delta;
            peak = peak.max(current);
        }
        peak as u64
    }

    /// Checks that `schedule` never exceeds the budget.
    ///
    /// # Errors
    ///
    /// Returns [`PowerViolation`] with the peak found.
    pub fn validate(&self, schedule: &Schedule) -> Result<(), PowerViolation> {
        let peak = self.peak_power(schedule);
        if peak > self.budget {
            Err(PowerViolation {
                peak,
                budget: self.budget,
            })
        } else {
            Ok(())
        }
    }
}

/// Error: a schedule's peak power exceeds the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerViolation {
    /// Peak concurrent power found.
    pub peak: u64,
    /// The allowed budget.
    pub budget: u64,
}

impl std::fmt::Display for PowerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "peak test power {} exceeds the budget {}",
            self.peak, self.budget
        )
    }
}

impl std::error::Error for PowerViolation {}

/// Schedules all cores onto `widths` like
/// [`greedy_schedule`](crate::greedy_schedule), but delays test starts as
/// needed so concurrent power never exceeds `power.budget()`.
///
/// # Errors
///
/// Returns [`ScheduleError::CoreUnschedulable`] / `BadPartition` as the
/// unconstrained scheduler does.
pub fn power_aware_schedule(
    cost: &CostModel,
    widths: &[u32],
    power: &PowerModel,
) -> Result<Schedule, ScheduleError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    }
    let order = longest_first_order(cost, widths);
    let mut placed: Vec<ScheduledTest> = Vec::with_capacity(order.len());
    let mut tam_free = vec![0u64; widths.len()];

    for &core in &order {
        let p = power.power(core);
        let mut best: Option<ScheduledTest> = None;
        for (j, &w) in widths.iter().enumerate() {
            let Some(d) = cost.time(core, w) else {
                continue;
            };
            let start = earliest_power_feasible(&placed, power, tam_free[j], d, p);
            let cand = ScheduledTest {
                core,
                tam: j,
                start,
                duration: d,
            };
            if best
                .as_ref()
                .is_none_or(|b| (cand.end(), cand.start) < (b.end(), b.start))
            {
                best = Some(cand);
            }
        }
        let Some(test) = best else {
            return Err(ScheduleError::CoreUnschedulable { core });
        };
        tam_free[test.tam] = test.end();
        placed.push(test);
    }
    Ok(Schedule::new(widths.to_vec(), placed))
}

/// Earliest start `t ≥ ready` such that adding a test of power `p` for
/// `duration` cycles keeps total power within budget.
fn earliest_power_feasible(
    placed: &[ScheduledTest],
    power: &PowerModel,
    ready: u64,
    duration: u64,
    p: u64,
) -> u64 {
    // Candidate starts: the TAM-ready time and every end of an already
    // placed test after it (power only decreases at test ends).
    let mut candidates: Vec<u64> = placed
        .iter()
        .map(ScheduledTest::end)
        .filter(|&e| e > ready)
        .collect();
    candidates.push(ready);
    candidates.sort_unstable();
    candidates.dedup();
    for t in candidates {
        if fits(placed, power, t, duration, p) {
            return t;
        }
    }
    // After the last end everything is idle; a lone core always fits.
    placed
        .iter()
        .map(ScheduledTest::end)
        .max()
        .unwrap_or(ready)
        .max(ready)
}

fn fits(placed: &[ScheduledTest], power: &PowerModel, start: u64, duration: u64, p: u64) -> bool {
    let end = start + duration;
    // Power is piecewise constant; check at `start` and at every test start
    // inside the window.
    let mut checkpoints = vec![start];
    for t in placed {
        if t.start > start && t.start < end {
            checkpoints.push(t.start);
        }
    }
    checkpoints.iter().all(|&at| {
        let concurrent: u64 = placed
            .iter()
            .filter(|t| t.start <= at && t.end() > at)
            .map(|t| power.power(t.core))
            .sum();
        concurrent + p <= power.budget()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 4, |i, w| {
            Some(1000 * (4 - i as u64) / u64::from(w))
        })
    }

    #[test]
    fn generous_budget_matches_unconstrained() {
        let c = cost();
        let power = PowerModel::new(vec![10, 10, 10, 10], 1000);
        let s = power_aware_schedule(&c, &[2, 2], &power).unwrap();
        s.validate(&c).unwrap();
        power.validate(&s).unwrap();
        let unconstrained = greedy_schedule(&c, &[2, 2]).unwrap();
        assert_eq!(s.makespan(), unconstrained.makespan());
    }

    #[test]
    fn tight_budget_serializes() {
        let c = cost();
        // Each core uses 60 of 100: no two can ever overlap.
        let power = PowerModel::new(vec![60, 60, 60, 60], 100);
        let s = power_aware_schedule(&c, &[2, 2], &power).unwrap();
        s.validate(&c).unwrap();
        power.validate(&s).unwrap();
        assert_eq!(power.peak_power(&s), 60);
        // Makespan equals the sum of all durations (full serialization).
        let total: u64 = s.tests().iter().map(|t| t.duration).sum();
        assert_eq!(s.makespan(), total);
    }

    #[test]
    fn moderate_budget_allows_pairs() {
        let c = cost();
        let power = PowerModel::new(vec![50, 50, 50, 50], 100);
        let s = power_aware_schedule(&c, &[2, 2], &power).unwrap();
        power.validate(&s).unwrap();
        assert!(power.peak_power(&s) <= 100);
        // Two at a time is allowed, so better than full serialization.
        let total: u64 = s.tests().iter().map(|t| t.duration).sum();
        assert!(s.makespan() < total);
    }

    #[test]
    fn power_constrained_never_faster() {
        let c = cost();
        let free = greedy_schedule(&c, &[1, 3]).unwrap().makespan();
        let power = PowerModel::new(vec![40, 40, 40, 40], 90);
        let s = power_aware_schedule(&c, &[1, 3], &power).unwrap();
        assert!(s.makespan() >= free);
    }

    #[test]
    fn peak_power_handles_back_to_back_tests() {
        // A test ending exactly when another starts must not double-count.
        let power = PowerModel::new(vec![70, 70], 100);
        let s = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 50,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 50,
                    duration: 50,
                },
            ],
        );
        assert_eq!(power.peak_power(&s), 70);
        power.validate(&s).unwrap();
    }

    #[test]
    fn violation_detected_and_displayed() {
        let power = PowerModel::new(vec![70, 70], 100);
        let s = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 50,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 25,
                    duration: 50,
                },
            ],
        );
        let err = power.validate(&s).unwrap_err();
        assert_eq!(err.peak, 140);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    #[should_panic(expected = "exceeds the power budget")]
    fn oversized_core_rejected_at_construction() {
        PowerModel::new(vec![120], 100);
    }
}
