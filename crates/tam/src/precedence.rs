//! Precedence-constrained test scheduling (extension).
//!
//! Real SOC test programs often impose an order between tests: a memory
//! must pass BIST before the logic around it is scan-tested, interconnect
//! tests follow both endpoints' core tests, etc. This module extends the
//! paper's scheduler with a precedence DAG: a core's test may not start
//! before all of its predecessors' tests have finished (across TAMs).

use std::fmt;

use crate::cost::CostModel;
use crate::schedule::{Schedule, ScheduleError, ScheduledTest};

/// A precedence DAG over core indices: `(before, after)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Precedence {
    edges: Vec<(usize, usize)>,
}

impl Precedence {
    /// An empty relation (no constraints).
    pub fn new() -> Self {
        Precedence::default()
    }

    /// Builds the relation from `(before, after)` pairs.
    pub fn from_edges(edges: impl Into<Vec<(usize, usize)>>) -> Self {
        Precedence {
            edges: edges.into(),
        }
    }

    /// Adds the constraint that `before` must finish before `after`
    /// starts.
    pub fn add(&mut self, before: usize, after: usize) -> &mut Self {
        self.edges.push((before, after));
        self
    }

    /// The constraint pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Topologically sorts `n` cores under this relation, breaking ties by
    /// the given priority (lower rank = earlier). Returns `None` when the
    /// relation has a cycle.
    fn topo_order(&self, n: usize, priority: &[usize]) -> Option<Vec<usize>> {
        let mut indegree = vec![0usize; n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            if a >= n || b >= n {
                return None;
            }
            indegree[b] += 1;
            succs[a].push(b);
        }
        // rank[i] = position of core i in the priority list.
        let mut rank = vec![0usize; n];
        for (pos, &core) in priority.iter().enumerate() {
            rank[core] = pos;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while !ready.is_empty() {
            // Pick the ready core with the best priority.
            let (idx, _) = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| rank[c])
                .expect("ready nonempty");
            let core = ready.swap_remove(idx);
            order.push(core);
            for &s in &succs[core] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.push(s);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Checks `schedule` against this relation.
    ///
    /// # Errors
    ///
    /// Returns [`PrecedenceViolation`] for the first broken edge.
    pub fn validate(&self, schedule: &Schedule) -> Result<(), PrecedenceViolation> {
        let find = |core: usize| schedule.tests().iter().find(|t| t.core == core);
        for &(a, b) in &self.edges {
            if let (Some(ta), Some(tb)) = (find(a), find(b)) {
                if ta.end() > tb.start {
                    return Err(PrecedenceViolation {
                        before: a,
                        after: b,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Error: a schedule starts a test before its predecessor finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecedenceViolation {
    /// The predecessor core.
    pub before: usize,
    /// The dependent core.
    pub after: usize,
}

impl fmt::Display for PrecedenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} starts before its predecessor core {} finishes",
            self.after, self.before
        )
    }
}

impl std::error::Error for PrecedenceViolation {}

/// Schedules all cores onto `widths` honoring `precedence`: cores are
/// placed in a topological order (longest-test-first among ready cores);
/// each goes to the TAM minimizing its finish time, starting no earlier
/// than its TAM is free *and* all its predecessors have finished.
///
/// # Errors
///
/// * [`ScheduleError::BadPartition`] — empty partition or a zero width, or
///   a cyclic/out-of-range precedence relation.
/// * [`ScheduleError::CoreUnschedulable`] — a core infeasible at every TAM
///   width.
pub fn precedence_schedule(
    cost: &CostModel,
    widths: &[u32],
    precedence: &Precedence,
) -> Result<Schedule, ScheduleError> {
    if widths.is_empty() || widths.contains(&0) {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    }
    let n = cost.core_count();
    let priority = crate::greedy::longest_first_order(cost, widths);
    let Some(order) = precedence.topo_order(n, &priority) else {
        return Err(ScheduleError::BadPartition {
            total_width: widths.iter().sum(),
            tams: widths.len() as u32,
        });
    };

    let mut finish_of = vec![0u64; n];
    let mut tam_free = vec![0u64; widths.len()];
    let mut tests: Vec<ScheduledTest> = Vec::with_capacity(n);
    for &core in &order {
        let preds_done = precedence
            .edges()
            .iter()
            .filter(|&&(_, b)| b == core)
            .map(|&(a, _)| finish_of[a])
            .max()
            .unwrap_or(0);
        let mut best: Option<ScheduledTest> = None;
        for (j, &w) in widths.iter().enumerate() {
            let Some(d) = cost.time(core, w) else {
                continue;
            };
            let start = tam_free[j].max(preds_done);
            let cand = ScheduledTest {
                core,
                tam: j,
                start,
                duration: d,
            };
            if best
                .as_ref()
                .is_none_or(|b| (cand.end(), cand.start) < (b.end(), b.start))
            {
                best = Some(cand);
            }
        }
        let Some(test) = best else {
            return Err(ScheduleError::CoreUnschedulable { core });
        };
        finish_of[core] = test.end();
        tam_free[test.tam] = test.end();
        tests.push(test);
    }
    Ok(Schedule::new(widths.to_vec(), tests))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 4, |i, w| {
            Some(600 * (i as u64 + 1) / u64::from(w))
        })
    }

    #[test]
    fn no_constraints_matches_greedy_quality_class() {
        let c = cost();
        let s = precedence_schedule(&c, &[2, 2], &Precedence::new()).unwrap();
        s.validate(&c).unwrap();
        // All cores placed back-to-back without precedence gaps.
        assert!(s.makespan() > 0);
    }

    #[test]
    fn chain_of_constraints_serializes() {
        let c = cost();
        // d → c → b → a: a full chain forces total serialization.
        let p = Precedence::from_edges(vec![(3, 2), (2, 1), (1, 0)]);
        let s = precedence_schedule(&c, &[2, 2], &p).unwrap();
        s.validate(&c).unwrap();
        p.validate(&s).unwrap();
        let total: u64 = s.tests().iter().map(|t| t.duration).sum();
        assert_eq!(s.makespan(), total);
    }

    #[test]
    fn partial_order_allows_parallelism() {
        let c = cost();
        let p = Precedence::from_edges(vec![(0, 1)]); // only a before b
        let s = precedence_schedule(&c, &[2, 2], &p).unwrap();
        p.validate(&s).unwrap();
        let total: u64 = s.tests().iter().map(|t| t.duration).sum();
        assert!(s.makespan() < total, "c and d should overlap something");
    }

    #[test]
    fn cycles_are_rejected() {
        let c = cost();
        let p = Precedence::from_edges(vec![(0, 1), (1, 2), (2, 0)]);
        assert!(matches!(
            precedence_schedule(&c, &[4], &p),
            Err(ScheduleError::BadPartition { .. })
        ));
    }

    #[test]
    fn out_of_range_edges_rejected() {
        let c = cost();
        let p = Precedence::from_edges(vec![(0, 9)]);
        assert!(precedence_schedule(&c, &[4], &p).is_err());
    }

    #[test]
    fn validator_catches_violations() {
        let p = Precedence::from_edges(vec![(0, 1)]);
        let bad = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 100,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 50,
                    duration: 100,
                },
            ],
        );
        let err = p.validate(&bad).unwrap_err();
        assert_eq!(
            err,
            PrecedenceViolation {
                before: 0,
                after: 1
            }
        );
        assert!(err.to_string().contains("before"));
    }

    #[test]
    fn precedence_never_beats_unconstrained() {
        let c = cost();
        let free = precedence_schedule(&c, &[2, 2], &Precedence::new())
            .unwrap()
            .makespan();
        let chained =
            precedence_schedule(&c, &[2, 2], &Precedence::from_edges(vec![(0, 1), (1, 2)]))
                .unwrap()
                .makespan();
        assert!(chained >= free);
    }
}
