//! Test schedules and their validation.

use std::fmt;

use crate::cost::CostModel;

/// One core's slot in the SOC test schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledTest {
    /// Core index into the [`CostModel`].
    pub core: usize,
    /// Index of the TAM the core is assigned to.
    pub tam: usize,
    /// Start time in clock cycles.
    pub start: u64,
    /// Duration in clock cycles.
    pub duration: u64,
}

impl ScheduledTest {
    /// End time in clock cycles. Saturates instead of overflowing so a
    /// corrupted plan file (absurd start/duration) cannot panic a debug
    /// build; validation rejects such schedules via the duration check.
    pub fn end(&self) -> u64 {
        self.start.saturating_add(self.duration)
    }
}

/// A complete SOC test schedule over a fixed-width TAM partition.
///
/// Invariants (checked by [`validate`](Schedule::validate)): every core
/// appears exactly once, tests on the same TAM do not overlap, and every
/// duration matches the cost model at the TAM's width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    tam_widths: Vec<u32>,
    tests: Vec<ScheduledTest>,
}

impl Schedule {
    /// Assembles a schedule from parts (validation is separate).
    pub fn new(tam_widths: Vec<u32>, tests: Vec<ScheduledTest>) -> Self {
        Schedule { tam_widths, tests }
    }

    /// Widths of the TAM partition.
    pub fn tam_widths(&self) -> &[u32] {
        &self.tam_widths
    }

    /// Total TAM wires used.
    pub fn total_width(&self) -> u32 {
        self.tam_widths.iter().sum()
    }

    /// The scheduled tests (arbitrary order).
    pub fn tests(&self) -> &[ScheduledTest] {
        &self.tests
    }

    /// SOC test time: the latest end time (0 for an empty schedule).
    pub fn makespan(&self) -> u64 {
        self.tests.iter().map(ScheduledTest::end).max().unwrap_or(0)
    }

    /// Finish time of one TAM.
    pub fn tam_finish(&self, tam: usize) -> u64 {
        self.tests
            .iter()
            .filter(|t| t.tam == tam)
            .map(ScheduledTest::end)
            .max()
            .unwrap_or(0)
    }

    /// Idle wire-cycles: `Σ_tam width · (makespan − finish_tam)` plus any
    /// internal gaps — a measure of how well the architecture is packed.
    pub fn idle_wire_cycles(&self) -> u64 {
        let makespan = self.makespan();
        let mut idle = 0;
        for (j, &w) in self.tam_widths.iter().enumerate() {
            let busy: u64 = self
                .tests
                .iter()
                .filter(|t| t.tam == j)
                .map(|t| t.duration)
                .sum();
            idle += u64::from(w) * (makespan - busy);
        }
        idle
    }

    /// Checks all schedule invariants against `cost`.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ScheduleError`].
    pub fn validate(&self, cost: &CostModel) -> Result<(), ScheduleError> {
        let n = cost.core_count();
        let mut seen = vec![false; n];
        for t in &self.tests {
            if t.core >= n {
                return Err(ScheduleError::UnknownCore { core: t.core });
            }
            if t.tam >= self.tam_widths.len() {
                return Err(ScheduleError::UnknownTam {
                    core: t.core,
                    tam: t.tam,
                });
            }
            if seen[t.core] {
                return Err(ScheduleError::DuplicateCore { core: t.core });
            }
            seen[t.core] = true;
            let width = self.tam_widths[t.tam];
            match cost.time(t.core, width) {
                Some(d) if d == t.duration => {}
                Some(d) => {
                    return Err(ScheduleError::WrongDuration {
                        core: t.core,
                        expected: d,
                        found: t.duration,
                    });
                }
                None => {
                    return Err(ScheduleError::InfeasibleWidth {
                        core: t.core,
                        width,
                    });
                }
            }
        }
        if let Some(core) = seen.iter().position(|&s| !s) {
            return Err(ScheduleError::MissingCore { core });
        }
        // Overlap check per TAM.
        for tam in 0..self.tam_widths.len() {
            let mut slots: Vec<&ScheduledTest> =
                self.tests.iter().filter(|t| t.tam == tam).collect();
            slots.sort_by_key(|t| t.start);
            for pair in slots.windows(2) {
                if pair[0].end() > pair[1].start {
                    return Err(ScheduleError::Overlap {
                        tam,
                        first: pair[0].core,
                        second: pair[1].core,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} TAMs (widths {:?}), makespan {}",
            self.tam_widths.len(),
            self.tam_widths,
            self.makespan()
        )?;
        for (j, &w) in self.tam_widths.iter().enumerate() {
            let mut slots: Vec<&ScheduledTest> = self.tests.iter().filter(|t| t.tam == j).collect();
            slots.sort_by_key(|t| t.start);
            write!(f, "  TAM{j} (w={w}):")?;
            for t in slots {
                write!(f, " core{}[{}..{}]", t.core, t.start, t.end())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A violated schedule invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A test references a core outside the cost model.
    UnknownCore {
        /// The offending core index.
        core: usize,
    },
    /// A test references a TAM outside the partition.
    UnknownTam {
        /// The scheduled core.
        core: usize,
        /// The offending TAM index.
        tam: usize,
    },
    /// A core is scheduled more than once.
    DuplicateCore {
        /// The offending core index.
        core: usize,
    },
    /// A core is not scheduled at all.
    MissingCore {
        /// The missing core index.
        core: usize,
    },
    /// A test's duration disagrees with the cost model.
    WrongDuration {
        /// The scheduled core.
        core: usize,
        /// Duration per the cost model.
        expected: u64,
        /// Duration found in the schedule.
        found: u64,
    },
    /// A core is assigned to a TAM width it cannot operate at.
    InfeasibleWidth {
        /// The scheduled core.
        core: usize,
        /// The infeasible width.
        width: u32,
    },
    /// Two tests on the same TAM overlap in time.
    Overlap {
        /// The TAM index.
        tam: usize,
        /// The earlier core.
        first: usize,
        /// The later core.
        second: usize,
    },
    /// No TAM in the partition can test this core (scheduling failure).
    CoreUnschedulable {
        /// The core no TAM can host.
        core: usize,
    },
    /// The requested partition is impossible (e.g. more TAMs than wires).
    BadPartition {
        /// Total wires requested.
        total_width: u32,
        /// Number of TAMs requested.
        tams: u32,
    },
    /// A cancellable search was stopped before it found any feasible
    /// architecture to return as an incumbent.
    Interrupted,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnknownCore { core } => write!(f, "unknown core {core}"),
            ScheduleError::UnknownTam { core, tam } => {
                write!(f, "core {core} assigned to unknown TAM {tam}")
            }
            ScheduleError::DuplicateCore { core } => {
                write!(f, "core {core} scheduled more than once")
            }
            ScheduleError::MissingCore { core } => write!(f, "core {core} not scheduled"),
            ScheduleError::WrongDuration {
                core,
                expected,
                found,
            } => write!(
                f,
                "core {core} scheduled for {found} cycles but the cost model says {expected}"
            ),
            ScheduleError::InfeasibleWidth { core, width } => {
                write!(f, "core {core} cannot be tested on a {width}-wire TAM")
            }
            ScheduleError::Overlap { tam, first, second } => {
                write!(f, "cores {first} and {second} overlap on TAM {tam}")
            }
            ScheduleError::CoreUnschedulable { core } => {
                write!(f, "no TAM in the partition can test core {core}")
            }
            ScheduleError::BadPartition { total_width, tams } => {
                write!(f, "cannot split {total_width} wires into {tams} TAMs")
            }
            ScheduleError::Interrupted => {
                write!(
                    f,
                    "search cancelled before any feasible architecture was found"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        let mut m = CostModel::new(2);
        m.push_core("a", vec![Some(100), Some(60)]);
        m.push_core("b", vec![Some(80), Some(50)]);
        m.push_core("c", vec![None, Some(40)]);
        m
    }

    fn good_schedule() -> Schedule {
        Schedule::new(
            vec![1, 2],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 100,
                },
                ScheduledTest {
                    core: 1,
                    tam: 1,
                    start: 0,
                    duration: 50,
                },
                ScheduledTest {
                    core: 2,
                    tam: 1,
                    start: 50,
                    duration: 40,
                },
            ],
        )
    }

    #[test]
    fn valid_schedule_passes() {
        let s = good_schedule();
        assert_eq!(s.validate(&cost()), Ok(()));
        assert_eq!(s.makespan(), 100);
        assert_eq!(s.tam_finish(1), 90);
        assert_eq!(s.total_width(), 3);
    }

    #[test]
    fn idle_wire_cycles_counts_gaps() {
        let s = good_schedule();
        // TAM0: busy 100/100 → 0 idle. TAM1: busy 90/100 → 10 · 2 wires.
        assert_eq!(s.idle_wire_cycles(), 20);
    }

    #[test]
    fn detects_missing_and_duplicate_cores() {
        let c = cost();
        let missing = Schedule::new(
            vec![2],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 60,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 60,
                    duration: 50,
                },
            ],
        );
        assert_eq!(
            missing.validate(&c),
            Err(ScheduleError::MissingCore { core: 2 })
        );

        let dup = Schedule::new(
            vec![2],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 60,
                },
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 60,
                    duration: 60,
                },
            ],
        );
        assert_eq!(
            dup.validate(&c),
            Err(ScheduleError::DuplicateCore { core: 0 })
        );
    }

    #[test]
    fn detects_overlap() {
        let c = cost();
        let s = Schedule::new(
            vec![2],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 60,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 59,
                    duration: 50,
                },
                ScheduledTest {
                    core: 2,
                    tam: 0,
                    start: 120,
                    duration: 40,
                },
            ],
        );
        assert_eq!(
            s.validate(&c),
            Err(ScheduleError::Overlap {
                tam: 0,
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn detects_wrong_duration_and_infeasible_width() {
        let c = cost();
        let wrong = Schedule::new(
            vec![2],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 61,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 61,
                    duration: 50,
                },
                ScheduledTest {
                    core: 2,
                    tam: 0,
                    start: 111,
                    duration: 40,
                },
            ],
        );
        assert!(matches!(
            wrong.validate(&c),
            Err(ScheduleError::WrongDuration {
                core: 0,
                expected: 60,
                found: 61
            })
        ));

        let infeasible = Schedule::new(
            vec![1, 1],
            vec![
                ScheduledTest {
                    core: 0,
                    tam: 0,
                    start: 0,
                    duration: 100,
                },
                ScheduledTest {
                    core: 1,
                    tam: 0,
                    start: 100,
                    duration: 80,
                },
                ScheduledTest {
                    core: 2,
                    tam: 1,
                    start: 0,
                    duration: 40,
                },
            ],
        );
        assert!(matches!(
            infeasible.validate(&c),
            Err(ScheduleError::InfeasibleWidth { core: 2, width: 1 })
        ));
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = ScheduleError::Overlap {
            tam: 1,
            first: 2,
            second: 3,
        };
        assert!(e.to_string().contains("overlap"));
        assert!(ScheduleError::CoreUnschedulable { core: 7 }
            .to_string()
            .contains("core 7"));
    }

    #[test]
    fn display_renders_gantt_rows() {
        let s = good_schedule().to_string();
        assert!(s.contains("TAM0"));
        assert!(s.contains("core2[50..90]"));
    }
}
