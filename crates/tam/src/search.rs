//! Cancellation-aware search results.
//!
//! Every long-running optimizer in this crate has a `*_with` variant
//! taking a [`robust::CancelToken`]. The loops poll the token and, when
//! it trips, stop at the next iteration boundary and return the best
//! architecture found so far — a [`Search`] whose status says whether the
//! search ran to completion or was interrupted. A cancellation that
//! arrives before any feasible architecture exists surfaces as
//! [`ScheduleError::Interrupted`](crate::ScheduleError::Interrupted)
//! instead.

use crate::optimize::Architecture;

/// How a cancellable search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStatus {
    /// The search examined everything its algorithm intended to.
    Complete,
    /// The cancel token tripped; the result is the incumbent at that
    /// point, not the algorithm's full answer.
    Interrupted,
}

/// Outcome of a cancellable architecture search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Search {
    /// Best architecture found before the search ended.
    pub architecture: Architecture,
    /// Whether the search completed or was cut short.
    pub status: SearchStatus,
}

impl Search {
    pub(crate) fn complete(architecture: Architecture) -> Self {
        Search {
            architecture,
            status: SearchStatus::Complete,
        }
    }

    pub(crate) fn interrupted(architecture: Architecture) -> Self {
        Search {
            architecture,
            status: SearchStatus::Interrupted,
        }
    }

    /// True when the search ran to completion.
    pub fn is_complete(&self) -> bool {
        self.status == SearchStatus::Complete
    }
}
