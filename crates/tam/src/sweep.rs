//! Allocation-free, bound-aware greedy-makespan evaluation with
//! incremental sort-key maintenance — the inner loop of the parallel
//! architecture search.
//!
//! [`GreedySweep`] answers "what makespan would [`greedy_schedule`]
//! produce for this partition?" without materializing a [`Schedule`],
//! mirroring [`schedule_in_order`] decision for decision (same core
//! ordering, same tie-breaks), so every makespan it reports is exactly the
//! one the materialized schedule has. On top of the plain sweep it adds
//! two accelerations that never change a reported value:
//!
//! * **Incremental keys.** The core ordering depends only on the
//!   *multiset* of widths present (each core is keyed by its best time
//!   over the distinct widths). Neighbouring partitions — a wire shifted,
//!   a TAM split or merged — mostly leave that multiset's distinct-width
//!   set unchanged, so [`apply`](GreedySweep::apply) updates the keys in
//!   `O(1)` per core instead of recomputing and resorting from scratch:
//!   a width class appearing can only lower a key (one `min`), and a
//!   class vanishing forces a recomputation only for cores whose key was
//!   achieved at that width.
//! * **Bounded early exit.** Per-TAM finish times only grow as cores are
//!   assigned, so the partial bottleneck is a lower bound on the final
//!   makespan; once it reaches the caller's bound the sweep aborts with
//!   [`SweepOutcome::Cutoff`]. Callers that only care about strict
//!   improvements (the hill-climber, the per-`k` pruning) lose nothing.
//!
//! [`greedy_schedule`]: crate::greedy_schedule
//! [`schedule_in_order`]: crate::schedule_in_order
//! [`Schedule`]: crate::Schedule

use crate::cost::CostModel;

/// Result of one [`GreedySweep::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SweepOutcome {
    /// Exact makespan of the greedy schedule for this partition.
    Exact(u64),
    /// The named core fits no TAM of the partition — the same core
    /// [`schedule_in_order`](crate::schedule_in_order) reports in
    /// `CoreUnschedulable`.
    Infeasible(usize),
    /// The partial bottleneck reached the caller's bound: the exact
    /// makespan is `>= bound`, so the candidate cannot strictly improve
    /// on it.
    Cutoff,
}

/// Reusable greedy-sweep state for one [`CostModel`]; see the module docs.
#[derive(Debug, Clone)]
pub(crate) struct GreedySweep {
    cores: usize,
    max_width: usize,
    /// Dense `cores × max_width` test-time matrix, `u64::MAX` marking an
    /// infeasible width — no `Option` matching or bounds assertions in
    /// the hot loops.
    tau: Vec<u64>,
    /// Per-core sort key: best time over the distinct widths present.
    keys: Vec<u64>,
    /// Core visit order (longest first, index tie-break).
    order: Vec<usize>,
    /// Per-TAM finish times of the last full (`Exact`) run.
    finish: Vec<u64>,
    /// `counts[w]` = TAMs of (clamped) width `w` in the tracked multiset.
    counts: Vec<u32>,
    /// The distinct width classes with `counts > 0`, unordered — key
    /// recomputation scans this (at most `k` entries) instead of the full
    /// `max_width + 1` count table.
    present: Vec<usize>,
    /// Keys changed since `order` was last sorted.
    dirty: bool,
}

impl GreedySweep {
    pub(crate) fn new(cost: &CostModel) -> Self {
        let cores = cost.core_count();
        let max_width = cost.max_width() as usize;
        let mut tau = Vec::with_capacity(cores * max_width);
        for core in 0..cores {
            for w in 1..=max_width as u32 {
                tau.push(cost.time(core, w).unwrap_or(u64::MAX));
            }
        }
        GreedySweep {
            cores,
            max_width,
            tau,
            keys: vec![u64::MAX; cores],
            order: (0..cores).collect(),
            finish: Vec::new(),
            counts: vec![0; max_width + 1],
            present: Vec::new(),
            dirty: true,
        }
    }

    /// Clamps a width to its distinct-class index (widths beyond the model
    /// all cost the same, so they share one class).
    #[inline]
    fn class(&self, width: u32) -> usize {
        (width as usize).min(self.max_width)
    }

    /// Points the tracked multiset at `widths`, recomputing keys and order
    /// from scratch.
    pub(crate) fn reset(&mut self, widths: &[u32]) {
        self.counts.fill(0);
        self.present.clear();
        for &w in widths {
            let c = self.class(w);
            if self.counts[c] == 0 {
                self.present.push(c);
            }
            self.counts[c] += 1;
        }
        for core in 0..self.cores {
            self.keys[core] = self.recompute_key(core);
        }
        self.dirty = true;
    }

    fn recompute_key(&self, core: usize) -> u64 {
        let row = &self.tau[core * self.max_width..(core + 1) * self.max_width];
        self.present
            .iter()
            .map(|&c| row[c - 1])
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Applies a multiset delta (`removed` widths leave, `added` widths
    /// join), updating the keys incrementally. Values are exactly what a
    /// [`reset`](Self::reset) on the new widths would produce.
    pub(crate) fn apply(&mut self, removed: &[u32], added: &[u32]) {
        // Count updates first, so key recomputation sees the final
        // multiset; track which width classes appeared or vanished.
        const CAP: usize = 4;
        debug_assert!(removed.len() <= CAP && added.len() <= CAP);
        let mut touched = [0usize; 2 * CAP];
        let mut was = [false; 2 * CAP];
        let mut n_touched = 0;
        for &w in added.iter().chain(removed) {
            let c = self.class(w);
            if !touched[..n_touched].contains(&c) {
                touched[n_touched] = c;
                was[n_touched] = self.counts[c] > 0;
                n_touched += 1;
            }
        }
        for &w in added {
            let c = self.class(w);
            self.counts[c] += 1;
        }
        for &w in removed {
            let c = self.class(w);
            debug_assert!(self.counts[c] > 0, "removed width not present");
            self.counts[c] -= 1;
        }

        for t in 0..n_touched {
            let (c, existed) = (touched[t], was[t]);
            let exists = self.counts[c] > 0;
            if exists && !existed {
                // New width class: a key can only drop.
                self.present.push(c);
                for core in 0..self.cores {
                    let t = self.tau[core * self.max_width + (c - 1)];
                    if t < self.keys[core] {
                        self.keys[core] = t;
                        self.dirty = true;
                    }
                }
            } else if existed && !exists {
                // Class vanished: only keys achieved at it can be stale.
                let pos = self
                    .present
                    .iter()
                    .position(|&p| p == c)
                    .expect("vanished class was tracked as present");
                self.present.swap_remove(pos);
                for core in 0..self.cores {
                    let key = self.keys[core];
                    if key != u64::MAX && self.tau[core * self.max_width + (c - 1)] == key {
                        let fresh = self.recompute_key(core);
                        if fresh != key {
                            self.keys[core] = fresh;
                            self.dirty = true;
                        }
                    }
                }
            }
        }
    }

    /// Runs the greedy sweep over `widths` (whose multiset must match the
    /// tracked one). With a `bound`, aborts with [`SweepOutcome::Cutoff`]
    /// as soon as the partial bottleneck shows the final makespan cannot
    /// be strictly below it; [`SweepOutcome::Exact`] therefore always
    /// reports a value `< bound`.
    pub(crate) fn run(&mut self, widths: &[u32], bound: Option<u64>) -> SweepOutcome {
        debug_assert_eq!(
            {
                let mut c = vec![0u32; self.max_width + 1];
                for &w in widths {
                    c[self.class(w)] += 1;
                }
                c
            },
            self.counts,
            "tracked multiset out of sync with widths"
        );
        if self.dirty {
            let keys = &self.keys;
            self.order
                .sort_by(|&a, &b| keys[b].cmp(&keys[a]).then(a.cmp(&b)));
            self.dirty = false;
        }

        // schedule_in_order, minus the schedule. Its candidate comparison
        // (least makespan increase, ties to the earlier finish, then the
        // lower TAM index) collapses to "first TAM with the strictly
        // smallest finish + duration": new_makespan = max(current,
        // new_finish) is monotone in new_finish, so the makespan-then-
        // finish lexicographic test accepts a candidate exactly when its
        // new_finish is strictly smaller than the incumbent's.
        self.finish.clear();
        self.finish.resize(widths.len(), 0);
        let cutoff = bound.unwrap_or(u64::MAX);
        let mut bottleneck = 0u64;
        for i in 0..self.order.len() {
            let core = self.order[i];
            let row = &self.tau[core * self.max_width..(core + 1) * self.max_width];
            let mut best_tam = usize::MAX;
            let mut best_finish = u64::MAX;
            for (j, &w) in widths.iter().enumerate() {
                let d = row[(w as usize).min(self.max_width) - 1];
                if d == u64::MAX {
                    continue;
                }
                let new_finish = self.finish[j] + d;
                if new_finish < best_finish {
                    best_finish = new_finish;
                    best_tam = j;
                }
            }
            if best_tam == usize::MAX {
                return SweepOutcome::Infeasible(core);
            }
            self.finish[best_tam] = best_finish;
            if best_finish > bottleneck {
                bottleneck = best_finish;
                // Finish times only grow, so the current bottleneck lower-
                // bounds the final makespan.
                if bottleneck >= cutoff {
                    return SweepOutcome::Cutoff;
                }
            }
        }
        SweepOutcome::Exact(bottleneck)
    }

    /// Per-TAM finish times of the last [`run`](Self::run) that returned
    /// [`SweepOutcome::Exact`] (cut-off or infeasible runs leave partial
    /// values).
    pub(crate) fn finishes(&self) -> &[u64] {
        &self.finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_schedule;
    use crate::schedule::ScheduleError;
    use proptest::prelude::*;

    fn expect(cost: &CostModel, widths: &[u32]) -> Result<(u64, Vec<u64>), usize> {
        match greedy_schedule(cost, widths) {
            Ok(s) => {
                let finishes = (0..widths.len()).map(|j| s.tam_finish(j)).collect();
                Ok((s.makespan(), finishes))
            }
            Err(ScheduleError::CoreUnschedulable { core }) => Err(core),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    fn check(cost: &CostModel, sweep: &mut GreedySweep, widths: &[u32]) {
        match (sweep.run(widths, None), expect(cost, widths)) {
            (SweepOutcome::Exact(m), Ok((want, finishes))) => {
                assert_eq!(m, want, "makespan for {widths:?}");
                assert_eq!(sweep.finishes(), finishes, "finishes for {widths:?}");
            }
            (SweepOutcome::Infeasible(core), Err(want)) => {
                assert_eq!(core, want, "infeasible core for {widths:?}");
            }
            (got, want) => panic!("widths {widths:?}: sweep {got:?} vs greedy {want:?}"),
        }
    }

    fn mixed_model() -> CostModel {
        let mut m = CostModel::new(6);
        m.push_core(
            "a",
            vec![Some(90), Some(50), Some(40), Some(35), Some(31), Some(30)],
        );
        m.push_core("narrow", vec![Some(70), Some(44), None, None, None, None]);
        m.push_core("wide", vec![None, None, None, Some(25), Some(22), Some(20)]);
        m.push_core(
            "b",
            vec![Some(88), Some(51), Some(40), Some(33), Some(28), Some(26)],
        );
        m
    }

    #[test]
    fn matches_greedy_schedule_on_fixed_partitions() {
        let m = mixed_model();
        let mut sweep = GreedySweep::new(&m);
        for widths in [
            vec![6],
            vec![3, 3],
            vec![1, 5],
            vec![2, 4],
            vec![1, 1, 4],
            vec![2, 2, 2],
            vec![4, 2],
            vec![5, 1],
            vec![1, 1, 1, 1, 1, 1],
        ] {
            sweep.reset(&widths);
            check(&m, &mut sweep, &widths);
        }
    }

    #[test]
    fn incremental_apply_tracks_shift_moves() {
        let m = mixed_model();
        let mut sweep = GreedySweep::new(&m);
        let mut widths = vec![2u32, 2, 2];
        sweep.reset(&widths);
        check(&m, &mut sweep, &widths);
        // A chain of donor→bottleneck shifts, each applied incrementally.
        for (donor, recv) in [(0usize, 1usize), (2, 1), (1, 0), (0, 2)] {
            if widths[donor] <= 1 {
                continue;
            }
            let (wd, wr) = (widths[donor], widths[recv]);
            widths[donor] -= 1;
            widths[recv] += 1;
            sweep.apply(&[wd, wr], &[wd - 1, wr + 1]);
            check(&m, &mut sweep, &widths);
        }
    }

    #[test]
    fn bounded_run_only_cuts_non_improving_partitions() {
        let m = mixed_model();
        let mut sweep = GreedySweep::new(&m);
        for widths in [vec![6u32], vec![3, 3], vec![2, 4], vec![2, 2, 2]] {
            sweep.reset(&widths);
            let SweepOutcome::Exact(exact) = sweep.run(&widths, None) else {
                continue;
            };
            // Bound above the makespan: exact survives. At or below: cut.
            assert_eq!(
                sweep.run(&widths, Some(exact + 1)),
                SweepOutcome::Exact(exact)
            );
            assert_eq!(sweep.run(&widths, Some(exact)), SweepOutcome::Cutoff);
            assert_eq!(sweep.run(&widths, Some(1)), SweepOutcome::Cutoff);
        }
    }

    #[test]
    fn saturated_widths_share_one_class() {
        // Widths beyond max_width all cost the same; apply must treat them
        // as one class or the counts go negative.
        let m = CostModel::from_fn(&["x", "y"], 4, |i, w| {
            Some(1000 * (i as u64 + 1) / u64::from(w))
        });
        let mut sweep = GreedySweep::new(&m);
        let mut widths = vec![9u32, 3];
        sweep.reset(&widths);
        check(&m, &mut sweep, &widths);
        // 9 → 8: both clamp to class 4, a no-op on the class multiset.
        widths[0] -= 1;
        widths[1] += 1;
        sweep.apply(&[9, 3], &[8, 4]);
        check(&m, &mut sweep, &widths);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite (c): incremental donor/bottleneck rescheduling agrees
        /// with `greedy_schedule` from scratch after every move of a
        /// random move sequence.
        #[test]
        fn incremental_rescheduling_matches_greedy_from_scratch(
            seed in 0u64..1_000_000,
            cores in 2usize..6,
            tams in 2usize..5,
            moves in proptest::collection::vec((0usize..8, 0usize..8), 1..12),
        ) {
            let names: Vec<String> = (0..cores).map(|i| format!("c{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let m = CostModel::from_fn(&name_refs, 8, |i, w| {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((i as u64) << 32 | u64::from(w));
                // A sprinkling of infeasible widths, but keep width 8 valid
                // so every core schedules somewhere.
                if w < 8 && x % 7 == 0 {
                    None
                } else {
                    Some(x % 5_000 + 5_000 / u64::from(w))
                }
            });
            let mut widths: Vec<u32> = vec![3; tams];
            let mut sweep = GreedySweep::new(&m);
            sweep.reset(&widths);
            check(&m, &mut sweep, &widths);
            for (donor, recv) in moves {
                let donor = donor % tams;
                let recv = recv % tams;
                if donor == recv || widths[donor] <= 1 {
                    continue;
                }
                let (wd, wr) = (widths[donor], widths[recv]);
                widths[donor] -= 1;
                widths[recv] += 1;
                sweep.apply(&[wd, wr], &[wd - 1, wr + 1]);
                check(&m, &mut sweep, &widths);
            }
        }
    }
}
