//! Properties of the parallel architecture-search portfolio: the result
//! must be invariant under the worker count (the pool only reorders
//! *execution*, never the deterministic reduction) and under pruning
//! (the per-`k` lower bound may only skip `k` values that cannot win).

#![forbid(unsafe_code)]

use proptest::prelude::*;

use tam::{
    anneal_architecture, exhaustive_architecture, optimize_architecture, AnnealOptions,
    ArchitectureOptions, CostModel,
};

const MAX_WIDTH: u32 = 6;

/// A small random cost model: per core a minimum feasible width and a
/// base time; times fall off with width but not perfectly smoothly, so
/// different `k` genuinely compete.
fn arb_cost() -> impl Strategy<Value = CostModel> {
    proptest::collection::vec((1u32..=4, 50u64..5_000), 2..6).prop_map(|cores| {
        let names: Vec<String> = (0..cores.len()).map(|i| format!("c{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        CostModel::from_fn(&name_refs, MAX_WIDTH, |i, w| {
            let (min_w, base) = cores[i];
            (w >= min_w).then(|| base / u64::from(w) + (base % (u64::from(w) + u64::from(min_w))))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hill_climb_portfolio_is_worker_count_invariant(
        cost in arb_cost(),
        total_width in 2u32..=8,
    ) {
        let run = |workers: usize| {
            optimize_architecture(
                &cost,
                total_width,
                &ArchitectureOptions { workers: Some(workers), ..Default::default() },
            )
        };
        let (one, two, four) = (run(1), run(2), run(4));
        match one {
            Ok(a) => {
                prop_assert_eq!(&a, &two.expect("2 workers diverged"));
                prop_assert_eq!(&a, &four.expect("4 workers diverged"));
                a.schedule.validate(&cost).expect("invalid winning schedule");
            }
            Err(e) => {
                prop_assert_eq!(format!("{e}"), format!("{}", two.unwrap_err()));
                prop_assert_eq!(format!("{e}"), format!("{}", four.unwrap_err()));
            }
        }
    }

    #[test]
    fn pruned_search_matches_unpruned_and_respects_the_oracle(
        cost in arb_cost(),
        total_width in 2u32..=8,
    ) {
        let run = |prune: bool| {
            optimize_architecture(
                &cost,
                total_width,
                &ArchitectureOptions { prune, ..Default::default() },
            )
        };
        match (run(true), run(false)) {
            (Ok(p), Ok(u)) => {
                prop_assert_eq!(&p, &u, "pruning changed the winner");
                // The exhaustive enumeration is the ground-truth optimum:
                // the hill-climb may settle above it, never below, and the
                // winner's own k must survive its lower bound.
                let best = exhaustive_architecture(&cost, total_width, total_width)
                    .expect("oracle must succeed when the hill-climb does");
                prop_assert!(p.test_time >= best.test_time);
                let k = p.schedule.tam_widths().len() as u32;
                prop_assert!(cost.lower_bound_for_k(total_width, k) <= p.test_time);
            }
            (Err(p), Err(u)) => prop_assert_eq!(format!("{p}"), format!("{u}")),
            other => prop_assert!(false, "pruning changed feasibility: {other:?}"),
        }
    }

    #[test]
    fn anneal_portfolio_is_worker_count_invariant(
        cost in arb_cost(),
        total_width in 2u32..=8,
        seed in 0u64..1_000,
    ) {
        let run = |workers: usize| {
            anneal_architecture(
                &cost,
                total_width,
                &AnnealOptions {
                    iterations: 300,
                    chains: 3,
                    workers: Some(workers),
                    seed,
                    ..Default::default()
                },
            )
        };
        match run(1) {
            Ok(a) => {
                prop_assert_eq!(&a, &run(2).expect("2 workers diverged"));
                prop_assert_eq!(&a, &run(4).expect("4 workers diverged"));
            }
            Err(e) => {
                prop_assert_eq!(format!("{e}"), format!("{}", run(2).unwrap_err()));
                prop_assert_eq!(format!("{e}"), format!("{}", run(4).unwrap_err()));
            }
        }
    }
}
