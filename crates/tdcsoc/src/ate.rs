//! Automatic test equipment (ATE) accounting.
//!
//! A plan is only executable if the tester has enough channels and enough
//! vector memory behind each channel. The paper's motivation is precisely
//! that test data volume is outgrowing tester memory; this module turns a
//! [`Plan`](crate::Plan) into the tester resources it demands.

use std::fmt;

use crate::planner::Plan;

/// A tester's relevant capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AteSpec {
    /// Digital channels available for test data.
    pub channels: u32,
    /// Vector memory depth behind each channel, in vectors (bits).
    pub memory_depth: u64,
    /// Tester clock in Hz (used only to convert cycles to seconds).
    pub clock_hz: u64,
}

impl AteSpec {
    /// A small characterization-class tester: 32 channels, 64 Mvector
    /// depth, 50 MHz.
    pub fn small() -> Self {
        AteSpec {
            channels: 32,
            memory_depth: 64 << 20,
            clock_hz: 50_000_000,
        }
    }

    /// How `plan` maps onto this tester.
    pub fn fit(&self, plan: &Plan) -> AteFit {
        // Every scheduled cycle occupies one vector on every driven
        // channel, so the required depth is the SOC test time.
        let required_depth = plan.test_time;
        AteFit {
            required_channels: plan.ate_channels,
            required_depth,
            fits: plan.ate_channels <= self.channels && required_depth <= self.memory_depth,
            test_seconds: plan.test_time as f64 / self.clock_hz as f64,
        }
    }
}

/// Result of fitting a plan onto an [`AteSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AteFit {
    /// Channels the plan drives.
    pub required_channels: u32,
    /// Vector depth required behind each channel.
    pub required_depth: u64,
    /// Whether the tester accommodates the plan.
    pub fits: bool,
    /// Test application time in seconds at the tester clock.
    pub test_seconds: f64,
}

impl fmt::Display for AteFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channels × {} vectors, {:.3} ms{}",
            self.required_channels,
            self.required_depth,
            self.test_seconds * 1e3,
            if self.fits { "" } else { " (DOES NOT FIT)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanRequest, Planner};
    use soc_model::benchmarks::Design;

    #[test]
    fn fit_reports_channels_and_depth() {
        let soc = Design::D695.build_with_cubes(3);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(16))
            .unwrap();
        let fit = AteSpec::small().fit(&plan);
        assert_eq!(fit.required_channels, 16);
        assert_eq!(fit.required_depth, plan.test_time);
        assert!(fit.fits);
        assert!(fit.test_seconds > 0.0);
    }

    #[test]
    fn seconds_scale_with_clock() {
        let soc = Design::D695.build_with_cubes(3);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(16))
            .unwrap();
        let slow = AteSpec {
            channels: 32,
            memory_depth: 1 << 30,
            clock_hz: 10_000_000,
        };
        let fast = AteSpec {
            channels: 32,
            memory_depth: 1 << 30,
            clock_hz: 100_000_000,
        };
        let a = slow.fit(&plan).test_seconds;
        let b = fast.fit(&plan).test_seconds;
        assert!((a / b - 10.0).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn small_tester_profile_is_sane() {
        let t = AteSpec::small();
        assert!(t.channels >= 16);
        assert!(t.memory_depth > 1 << 20);
        assert!(t.clock_hz > 1_000_000);
    }

    #[test]
    fn undersized_tester_is_flagged() {
        let soc = Design::D695.build_with_cubes(3);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(16))
            .unwrap();
        let tiny = AteSpec {
            channels: 8,
            memory_depth: 1 << 10,
            clock_hz: 1_000_000,
        };
        let fit = tiny.fit(&plan);
        assert!(!fit.fits);
        assert!(fit.to_string().contains("DOES NOT FIT"));
    }
}
