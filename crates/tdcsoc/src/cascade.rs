//! The deadline-aware solver cascade and its execution controls.
//!
//! [`Planner::plan`](crate::Planner::plan) runs the paper's deterministic
//! hill-climber with no time bound. [`Planner::plan_with`]
//! (crate::Planner::plan_with) layers a fault-tolerant execution harness
//! on top: a wall-clock [`Deadline`], a cooperative [`CancelToken`], and a
//! degradation ladder over the architecture solvers —
//!
//! 1. **greedy** — the hill-climbing constructive heuristic; fast, always
//!    produces a feasible incumbent (the single-TAM baseline survives even
//!    an already-expired deadline);
//! 2. **exhaustive** — the provably optimal enumeration, attempted only
//!    under a bounded deadline and only when the instance fits the
//!    enumeration cap; it runs inside a slice of the remaining budget and
//!    is cut off cooperatively when the slice expires;
//! 3. **anneal** — simulated annealing warm-started from the incumbent,
//!    spending whatever budget remains on refinement.
//!
//! Each stage hands its incumbent to the next; the final
//! [`PlanOutcome`] records which stage produced the winning schedule and
//! whether the search ran to completion ([`PlanOutcome::Optimal`]), was
//! cut short by the deadline ([`PlanOutcome::Degraded`]), or was cancelled
//! externally ([`PlanOutcome::Interrupted`]).

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use robust::{CancelToken, Deadline};
use tam::{
    anneal_architecture_with, exhaustive_architecture_with, optimize_architecture_with,
    AnnealOptions, Architecture, ArchitectureOptions, CostModel, ScheduleError,
};

use crate::planner::Plan;

/// Fraction of the remaining budget the greedy hill-climber may consume
/// before the cascade moves on.
const GREEDY_SLICE: f64 = 0.35;
/// Fraction of the *then-remaining* budget granted to the exhaustive
/// stage; the rest is kept for annealing refinement.
const EXHAUSTIVE_SLICE: f64 = 0.5;
/// Restart chains for the annealing stage. Fixed (not derived from the
/// machine) so a plan is reproducible on any host; the chains share the
/// worker pool of the surrounding search.
const ANNEAL_CHAINS: u32 = 2;

/// Execution controls for [`Planner::plan_with`](crate::Planner::plan_with).
#[derive(Debug, Clone, Default)]
pub struct PlanControl {
    /// Wall-clock budget for the whole plan (tables + architecture
    /// search). [`Deadline::none`] (the default) disables the cascade and
    /// reproduces [`Planner::plan`](crate::Planner::plan) exactly.
    pub deadline: Deadline,
    /// External kill switch. Cancelling it stops every solver loop at the
    /// next check and yields the best incumbent as
    /// [`PlanOutcome::Interrupted`].
    pub token: CancelToken,
    /// When set, the incumbent schedule is serialized here (atomically,
    /// best-effort) after every improving stage, so a killed run can
    /// restart from its best-known plan via [`PlanControl::resume`].
    pub checkpoint: Option<PathBuf>,
    /// A previously checkpointed plan to resume from. Its schedule seeds
    /// the incumbent when it validates against the freshly built cost
    /// model; an incompatible or stale checkpoint is silently discarded
    /// (robustness over strictness — a bad checkpoint must never make a
    /// plan worse than planning from scratch).
    pub resume: Option<Plan>,
    /// When set, per-core decision profiles are cached as CSV files in
    /// this directory: a planning run re-reads matching profiles instead
    /// of rebuilding them (the dominant cost of a plan) and writes any it
    /// had to build. All cache traffic is best-effort — an unreadable or
    /// stale file simply means rebuilding, never a worse plan.
    pub profile_cache: Option<ProfileCacheConfig>,
    /// Opts out of stream verification. By default (`false`) every
    /// selective-encoding operating point a finished plan instantiates is
    /// re-encoded and replayed through the batched decompressor emulator
    /// ([`selenc::verify_test_set_stream`]) before the plan is returned, so
    /// a plan in hand is a plan whose compressed streams provably
    /// reconstruct every care bit. Skipping trades that guarantee for the
    /// (emulator-cheap) verification time.
    pub skip_stream_verification: bool,
}

/// Where [`PlanControl::profile_cache`] keeps per-core profile CSVs, and
/// how large it may grow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileCacheConfig {
    /// Cache directory (created on demand).
    pub dir: PathBuf,
    /// Distinguishes incompatible profile generations (design, pattern
    /// seed, sampling parameters); part of every cache file name, so
    /// changing any generation input misses cleanly instead of reusing a
    /// wrong profile.
    pub tag: String,
    /// Entry (file-count) and byte caps for the on-disk cache, divided
    /// evenly across its 16 fingerprint-keyed shards. After each write
    /// the oldest cached profiles in the written shard — by write order,
    /// tracked in a per-shard index journal, never by file mtime — are
    /// deleted until that shard's caps hold again.
    pub limits: robust::CacheLimits,
}

impl ProfileCacheConfig {
    /// Default file-count cap for an on-disk profile cache.
    pub const DEFAULT_FILES: usize = 4096;
    /// Default byte cap for an on-disk profile cache (64 MiB).
    pub const DEFAULT_BYTES: usize = 64 << 20;

    /// A cache under `dir` keyed by `tag` with the default caps.
    pub fn new(dir: impl Into<PathBuf>, tag: impl Into<String>) -> Self {
        ProfileCacheConfig {
            dir: dir.into(),
            tag: tag.into(),
            limits: robust::CacheLimits::new(Self::DEFAULT_FILES, Self::DEFAULT_BYTES),
        }
    }

    /// Overrides the file-count/byte caps.
    pub fn with_limits(mut self, limits: robust::CacheLimits) -> Self {
        self.limits = limits;
        self
    }
}

impl PlanControl {
    /// A control block with a wall-clock budget and no other constraints.
    pub fn with_deadline(budget: Duration) -> Self {
        PlanControl {
            deadline: Deadline::within(budget),
            ..PlanControl::default()
        }
    }

    /// Adds a checkpoint path.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Adds a plan to resume from.
    pub fn resume_from(mut self, plan: Plan) -> Self {
        self.resume = Some(plan);
        self
    }

    /// Caches per-core profiles as CSVs under `dir`, keyed by `tag`, with
    /// the default size caps.
    pub fn cache_profiles_in(mut self, dir: impl Into<PathBuf>, tag: impl Into<String>) -> Self {
        self.profile_cache = Some(ProfileCacheConfig::new(dir, tag));
        self
    }

    /// Disables plan-time stream verification (see
    /// [`skip_stream_verification`](PlanControl::skip_stream_verification)).
    pub fn without_stream_verification(mut self) -> Self {
        self.skip_stream_verification = true;
        self
    }
}

/// The solver that produced a plan's final schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverStage {
    /// The schedule came from a resumed checkpoint that no later stage
    /// improved on.
    Resume,
    /// The greedy hill-climber ([`tam::optimize_architecture`]).
    Greedy,
    /// The exhaustive enumeration ([`tam::exhaustive_architecture`]).
    Exhaustive,
    /// Simulated annealing ([`tam::anneal_architecture`]).
    Anneal,
}

impl SolverStage {
    /// Stable keyword used in plan files.
    pub fn keyword(self) -> &'static str {
        match self {
            SolverStage::Resume => "resume",
            SolverStage::Greedy => "greedy",
            SolverStage::Exhaustive => "exhaustive",
            SolverStage::Anneal => "anneal",
        }
    }

    /// Parses a plan-file keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "resume" => SolverStage::Resume,
            "greedy" => SolverStage::Greedy,
            "exhaustive" => SolverStage::Exhaustive,
            "anneal" => SolverStage::Anneal,
            _ => return None,
        })
    }
}

impl fmt::Display for SolverStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// How a plan's architecture search concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanOutcome {
    /// The search ran everything it intended to within its budget. When
    /// the exhaustive stage finished, the schedule is provably optimal;
    /// otherwise this simply asserts that no stage was cut short.
    #[default]
    Optimal,
    /// The deadline expired mid-search: the plan is the best incumbent,
    /// produced by the recorded stage.
    Degraded(SolverStage),
    /// The cancel token was tripped externally: the plan is the best
    /// incumbent at the moment of cancellation.
    Interrupted(SolverStage),
}

impl PlanOutcome {
    /// True when no stage was cut short.
    pub fn is_complete(self) -> bool {
        matches!(self, PlanOutcome::Optimal)
    }

    /// The stage that produced the schedule (`None` for complete runs,
    /// where the distinction carries no recovery information).
    pub fn stage(self) -> Option<SolverStage> {
        match self {
            PlanOutcome::Optimal => None,
            PlanOutcome::Degraded(s) | PlanOutcome::Interrupted(s) => Some(s),
        }
    }
}

impl fmt::Display for PlanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOutcome::Optimal => f.write_str("optimal"),
            PlanOutcome::Degraded(s) => write!(f, "degraded {s}"),
            PlanOutcome::Interrupted(s) => write!(f, "interrupted {s}"),
        }
    }
}

/// Result of [`solve`]: the winning architecture plus recovery metadata.
pub(crate) struct CascadeResult {
    pub architecture: Architecture,
    pub outcome: PlanOutcome,
}

/// Runs the degradation ladder over the architecture solvers.
///
/// `incumbent` optionally seeds the search (a resumed checkpoint);
/// `on_improve` fires whenever a stage strictly improves the incumbent —
/// the planner uses it to write checkpoints.
///
/// # Errors
///
/// Propagates genuine infeasibility ([`ScheduleError::BadPartition`],
/// [`ScheduleError::CoreUnschedulable`]) from the greedy stage; deadline
/// expiry and cancellation are never errors once any incumbent exists.
pub(crate) fn solve(
    cost: &CostModel,
    total_width: u32,
    opts: &ArchitectureOptions,
    token: &CancelToken,
    incumbent: Option<(Architecture, SolverStage)>,
    on_improve: &mut dyn FnMut(&Architecture, SolverStage),
) -> Result<CascadeResult, ScheduleError> {
    let bounded = token.deadline().remaining().is_some();
    let mut incumbent = incumbent;
    let mut cut_short = false;
    let mut proven_optimal = false;

    let mut consider =
        |arch: Architecture,
         stage: SolverStage,
         incumbent: &mut Option<(Architecture, SolverStage)>| {
            let better = incumbent
                .as_ref()
                .is_none_or(|(best, _)| arch.test_time < best.test_time);
            if better {
                on_improve(&arch, stage);
                *incumbent = Some((arch, stage));
            }
        };

    // Stage 1: greedy hill-climb. Always attempted — it degrades
    // internally to the single-TAM baseline when the budget is already
    // spent, so this is the floor that guarantees an incumbent (or a
    // genuine infeasibility error).
    let slice = if bounded {
        token.with_deadline(token.deadline().fraction(GREEDY_SLICE))
    } else {
        token.clone()
    };
    match optimize_architecture_with(cost, total_width, opts, &slice) {
        Ok(search) => {
            if !search.is_complete() {
                cut_short = true;
            }
            consider(search.architecture, SolverStage::Greedy, &mut incumbent);
        }
        Err(ScheduleError::Interrupted) => cut_short = true,
        Err(e) => {
            if incumbent.is_none() {
                return Err(e);
            }
        }
    }

    // Stage 2: exhaustive enumeration — only inside a bounded deadline
    // (it is far too expensive to run unasked) and only while time
    // remains. Oversized instances surface as `BadPartition` and are
    // skipped without penalty.
    if bounded && !token.is_cancelled() {
        let max_tams = opts.max_tams.unwrap_or(total_width);
        let slice = token.with_deadline(token.deadline().fraction(EXHAUSTIVE_SLICE));
        match exhaustive_architecture_with(cost, total_width, max_tams, &slice) {
            Ok(search) => {
                if search.is_complete() {
                    proven_optimal = true;
                } else {
                    cut_short = true;
                }
                consider(search.architecture, SolverStage::Exhaustive, &mut incumbent);
            }
            Err(ScheduleError::Interrupted) => cut_short = true,
            Err(_) => {} // instance too large for enumeration: skip
        }
    }

    // Stage 3: annealing refinement on the remaining budget, warm-started
    // from the incumbent. Pointless after a completed exhaustive stage.
    if bounded && !proven_optimal {
        if token.is_cancelled() {
            cut_short = true;
        } else {
            let warm: Option<Vec<u32>> = incumbent
                .as_ref()
                .map(|(best, _)| best.schedule.tam_widths().to_vec());
            let anneal_opts = AnnealOptions {
                chains: ANNEAL_CHAINS,
                workers: opts.workers,
                ..AnnealOptions::default()
            };
            match anneal_architecture_with(cost, total_width, &anneal_opts, warm.as_deref(), token)
            {
                Ok(search) => {
                    if !search.is_complete() {
                        cut_short = true;
                    }
                    consider(search.architecture, SolverStage::Anneal, &mut incumbent);
                }
                Err(ScheduleError::Interrupted) => cut_short = true,
                Err(_) => {}
            }
        }
    }

    let (architecture, stage) = incumbent.ok_or(ScheduleError::Interrupted)?;
    let outcome = if proven_optimal {
        PlanOutcome::Optimal
    } else if token.cancel_requested() {
        PlanOutcome::Interrupted(stage)
    } else if cut_short {
        PlanOutcome::Degraded(stage)
    } else {
        PlanOutcome::Optimal
    };
    Ok(CascadeResult {
        architecture,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::from_fn(&["a", "b", "c", "d"], 8, |i, w| {
            Some(9_000 * (i as u64 + 1) / u64::from(w) + 17)
        })
    }

    #[test]
    fn unbounded_cascade_matches_hill_climber() {
        let c = cost();
        let opts = ArchitectureOptions::default();
        let plain = tam::optimize_architecture(&c, 8, &opts).unwrap();
        let result = solve(&c, 8, &opts, &CancelToken::never(), None, &mut |_, _| {}).unwrap();
        assert_eq!(result.outcome, PlanOutcome::Optimal);
        assert_eq!(result.architecture, plain);
    }

    #[test]
    fn bounded_cascade_reaches_exhaustive_optimum() {
        let c = cost();
        let opts = ArchitectureOptions::default();
        let oracle = tam::exhaustive_architecture(&c, 8, 8).unwrap();
        let token = CancelToken::expiring_in(Duration::from_secs(30));
        let result = solve(&c, 8, &opts, &token, None, &mut |_, _| {}).unwrap();
        assert_eq!(result.outcome, PlanOutcome::Optimal);
        assert_eq!(result.architecture.test_time, oracle.test_time);
    }

    #[test]
    fn expired_deadline_degrades_but_stays_feasible() {
        let c = cost();
        let token = CancelToken::expiring_in(Duration::ZERO);
        let result = solve(
            &c,
            8,
            &ArchitectureOptions::default(),
            &token,
            None,
            &mut |_, _| {},
        )
        .unwrap();
        assert!(matches!(result.outcome, PlanOutcome::Degraded(_)));
        result.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn external_cancel_reports_interrupted() {
        let c = cost();
        let token = CancelToken::expiring_in(Duration::from_secs(30));
        token.cancel();
        let result = solve(
            &c,
            8,
            &ArchitectureOptions::default(),
            &token,
            None,
            &mut |_, _| {},
        )
        .unwrap();
        assert!(matches!(result.outcome, PlanOutcome::Interrupted(_)));
        result.architecture.schedule.validate(&c).unwrap();
    }

    #[test]
    fn resume_incumbent_survives_when_unbeaten() {
        let c = cost();
        let oracle = tam::exhaustive_architecture(&c, 8, 8).unwrap();
        let token = CancelToken::expiring_in(Duration::ZERO);
        let result = solve(
            &c,
            8,
            &ArchitectureOptions::default(),
            &token,
            Some((oracle.clone(), SolverStage::Resume)),
            &mut |_, _| {},
        )
        .unwrap();
        // Nothing can beat the optimum, so the resumed incumbent wins.
        assert_eq!(result.architecture.test_time, oracle.test_time);
    }

    #[test]
    fn on_improve_fires_for_strict_improvements_only() {
        let c = cost();
        let token = CancelToken::expiring_in(Duration::from_secs(30));
        let mut improvements = Vec::new();
        let result = solve(
            &c,
            8,
            &ArchitectureOptions::default(),
            &token,
            None,
            &mut |arch, stage| improvements.push((arch.test_time, stage)),
        )
        .unwrap();
        assert!(!improvements.is_empty());
        for pair in improvements.windows(2) {
            assert!(pair[1].0 < pair[0].0, "non-improving checkpoint");
        }
        let last = improvements.last().unwrap();
        assert_eq!(last.0, result.architecture.test_time);
    }

    #[test]
    fn outcome_serialization_roundtrips() {
        for outcome in [
            PlanOutcome::Optimal,
            PlanOutcome::Degraded(SolverStage::Greedy),
            PlanOutcome::Interrupted(SolverStage::Anneal),
            PlanOutcome::Degraded(SolverStage::Exhaustive),
            PlanOutcome::Interrupted(SolverStage::Resume),
        ] {
            let text = outcome.to_string();
            let mut parts = text.split_whitespace();
            let parsed = match (parts.next(), parts.next()) {
                (Some("optimal"), None) => PlanOutcome::Optimal,
                (Some("degraded"), Some(s)) => {
                    PlanOutcome::Degraded(SolverStage::from_keyword(s).unwrap())
                }
                (Some("interrupted"), Some(s)) => {
                    PlanOutcome::Interrupted(SolverStage::from_keyword(s).unwrap())
                }
                other => panic!("bad outcome text {other:?}"),
            };
            assert_eq!(parsed, outcome);
        }
    }
}
