//! Per-core operating-point decisions for each compression style.
//!
//! For every candidate TAM width `w`, a *decision* fixes how the core would
//! be tested on a `w`-wire TAM — with which decompressor geometry `(w', m)`
//! if any — together with the resulting test time and tester data volume.
//! The tables feed the TAM scheduler (as a [`tam::CostModel`]) and are
//! consulted again after scheduling to report each core's chosen setting.

use fdr::compress_fdr;
use lfsr::{compress_reseeding, ReseedOptions};
use robust::CancelToken;
use selenc::{evaluate_clamped, CoreProfile, ProfileConfig, SliceCode};
use soc_model::Core;
use wrapper::best_design_up_to;

/// How test data reaches the cores (the paper's Fig. 4 alternatives plus
/// the comparison baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionMode {
    /// No compression: wrapper chains driven straight from TAM wires
    /// (Fig. 4(a)).
    None,
    /// One selective-encoding decompressor per core, with per-core
    /// optimized `(w, m)` and automatic bypass when raw access is faster —
    /// the paper's proposal (Fig. 4(c)).
    PerCore,
    /// One shared selective-encoding decompressor per TAM (Fig. 4(b),
    /// ≈ comparator \[18\]): every core on the TAM sees the same expansion
    /// geometry, pinned to the widest feasible `m` (no per-core search).
    PerTam,
    /// Per-core decompressors with the input width pinned
    /// (≈ comparator \[11\], which only operates at `w = 4`).
    FixedWidth(u32),
    /// LFSR reseeding with per-pattern seeds (≈ comparator \[13\]).
    Reseeding,
    /// Frequency-directed run-length coding with one serial decompressor
    /// per TAM wire (≈ the compression-driven TAM design of \[10\]).
    Fdr,
    /// Per-core compression-technique selection: every core independently
    /// picks the fastest of {raw, selective encoding, FDR} at each width
    /// (the authors' ATS 2008 follow-up direction).
    Select,
}

impl CompressionMode {
    /// Short label used in reports.
    pub fn label(self) -> String {
        match self {
            CompressionMode::None => "no-TDC".into(),
            CompressionMode::PerCore => "TDC/core".into(),
            CompressionMode::PerTam => "TDC/TAM".into(),
            CompressionMode::FixedWidth(w) => format!("TDC w={w}"),
            CompressionMode::Reseeding => "reseeding".into(),
            CompressionMode::Fdr => "FDR".into(),
            CompressionMode::Select => "select".into(),
        }
    }
}

/// The compression technique a decision settles on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Technique {
    /// Raw wrapper access, no decompressor.
    #[default]
    Raw,
    /// Selective encoding (the paper's scheme).
    SelectiveEncoding,
    /// LFSR reseeding.
    Reseeding,
    /// Frequency-directed run-length coding.
    Fdr,
}

impl Technique {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Raw => "raw",
            Technique::SelectiveEncoding => "selenc",
            Technique::Reseeding => "reseed",
            Technique::Fdr => "fdr",
        }
    }
}

/// One core's operating point on a TAM of a given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Test time in clock cycles.
    pub test_time: u64,
    /// Tester data volume in bits (stimuli only, as in the paper).
    pub volume_bits: u64,
    /// Decompressor geometry `(w, m)`, or `None` for raw wrapper access.
    pub decompressor: Option<(u32, u32)>,
    /// Seed register length when LFSR reseeding is used.
    pub lfsr_len: Option<u32>,
    /// The technique this decision uses.
    pub technique: Technique,
}

/// Decision table of one core: `table[w - 1]` is the operating point on a
/// `w`-wire TAM (`None` when the core cannot be tested at that width under
/// the chosen mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTable {
    name: String,
    table: Vec<Option<Decision>>,
}

/// Tuning knobs shared by all decision builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionConfig {
    /// Evaluate at most this many evenly spaced patterns per operating
    /// point (`None` = exact).
    pub pattern_sample: Option<usize>,
    /// Chain counts tried per width class when searching for the best `m`.
    pub m_candidates: usize,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            pattern_sample: Some(24),
            m_candidates: 24,
        }
    }
}

impl DecisionConfig {
    /// Exact evaluation (full test set, every chain count) — use on small
    /// benchmarks only.
    pub fn exact() -> Self {
        DecisionConfig {
            pattern_sample: None,
            m_candidates: usize::MAX,
        }
    }
}

impl DecisionTable {
    /// Builds the table of `core` for `mode`, covering widths
    /// `1..=max_width`.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set (modes with
    /// compression), or `max_width == 0`.
    pub fn build(
        core: &Core,
        mode: CompressionMode,
        max_width: u32,
        config: &DecisionConfig,
    ) -> Self {
        Self::build_with(core, mode, max_width, config, &CancelToken::never())
    }

    /// Deadline-aware variant of [`build`](DecisionTable::build): polls
    /// `token` between operating-point evaluations and, once it trips,
    /// fills the remaining widths with the cheap raw (uncompressed)
    /// decision instead of searching for a decompressor.
    ///
    /// Every width still gets a usable decision, so planning proceeds on a
    /// complete cost model — just at degraded fidelity for the widths the
    /// budget did not cover.
    ///
    /// # Panics
    ///
    /// As [`build`](DecisionTable::build).
    pub fn build_with(
        core: &Core,
        mode: CompressionMode,
        max_width: u32,
        config: &DecisionConfig,
        token: &CancelToken,
    ) -> Self {
        assert!(max_width > 0, "width budget must be positive");
        let raw = raw_decisions(core, max_width);
        let cancelled = || token.is_cancelled();
        let table: Vec<Option<Decision>> = match mode {
            CompressionMode::None => raw.into_iter().map(Some).collect(),
            CompressionMode::PerCore => {
                let profile = build_profile(core, max_width, config, token);
                (1..=max_width)
                    .map(|w| {
                        let bypass = raw[(w - 1) as usize];
                        let tdc = profile.best_at_most(w).map(|e| Decision {
                            test_time: e.test_time,
                            volume_bits: e.volume_bits,
                            decompressor: Some((e.tam_width, e.chains)),
                            lfsr_len: None,
                            technique: Technique::SelectiveEncoding,
                        });
                        Some(match tdc {
                            Some(t) if t.test_time < bypass.test_time => t,
                            _ => bypass,
                        })
                    })
                    .collect()
            }
            CompressionMode::PerTam => (1..=max_width)
                .map(|w| {
                    Some(if cancelled() {
                        raw[(w - 1) as usize]
                    } else {
                        per_tam_decision(core, w, config)
                    })
                })
                .collect(),
            CompressionMode::FixedWidth(wf) => {
                let profile = build_profile(core, wf, config, token);
                let entry = profile.entry_at(wf).map(|e| Decision {
                    test_time: e.test_time,
                    volume_bits: e.volume_bits,
                    decompressor: Some((e.tam_width, e.chains)),
                    lfsr_len: None,
                    technique: Technique::SelectiveEncoding,
                });
                // A tripped token can leave the pinned width unevaluated;
                // degrade to raw access rather than declaring the core
                // unschedulable.
                let entry =
                    entry.or_else(|| cancelled().then(|| raw[(wf.min(max_width) - 1) as usize]));
                (1..=max_width)
                    .map(|w| if w >= wf { entry } else { None })
                    .collect()
            }
            CompressionMode::Reseeding => (1..=max_width)
                .map(|w| {
                    if cancelled() {
                        Some(raw[(w - 1) as usize])
                    } else {
                        reseed_decision(core, w, config)
                    }
                })
                .collect(),
            CompressionMode::Fdr => {
                // Running minimum: wires may be left unused.
                let mut best: Option<Decision> = None;
                (1..=max_width)
                    .map(|w| {
                        if cancelled() {
                            return Some(best.unwrap_or(raw[(w - 1) as usize]));
                        }
                        let r = compress_fdr(core, w, config.pattern_sample);
                        let d = Decision {
                            test_time: r.test_time,
                            volume_bits: r.volume_bits,
                            decompressor: None,
                            lfsr_len: None,
                            technique: Technique::Fdr,
                        };
                        if best.is_none_or(|b| d.test_time < b.test_time) {
                            best = Some(d);
                        }
                        best
                    })
                    .collect()
            }
            CompressionMode::Select => {
                let selenc_table = DecisionTable::build_with(
                    core,
                    CompressionMode::PerCore,
                    max_width,
                    config,
                    token,
                );
                let fdr_table =
                    DecisionTable::build_with(core, CompressionMode::Fdr, max_width, config, token);
                (1..=max_width)
                    .map(|w| {
                        [selenc_table.decision(w), fdr_table.decision(w)]
                            .into_iter()
                            .flatten()
                            .min_by_key(|d| d.test_time)
                    })
                    .collect()
            }
        };
        DecisionTable {
            name: core.name().to_string(),
            table,
        }
    }

    /// Assembles a table from precomputed decisions (used by the planner's
    /// internal-width variant of the shared-decompressor mode).
    pub(crate) fn from_parts(name: String, table: Vec<Option<Decision>>) -> Self {
        DecisionTable { name, table }
    }

    /// The core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of widths covered.
    pub fn max_width(&self) -> u32 {
        self.table.len() as u32
    }

    /// The decision on a `w`-wire TAM (widths above the table saturate).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn decision(&self, w: u32) -> Option<Decision> {
        assert!(w > 0, "TAM width must be positive");
        let w = w.min(self.table.len() as u32);
        self.table[(w - 1) as usize]
    }

    /// Test times only, in the shape [`tam::CostModel`] expects.
    pub fn time_row(&self) -> Vec<Option<u64>> {
        self.table.iter().map(|d| d.map(|d| d.test_time)).collect()
    }
}

/// Raw (uncompressed) decision per width: the best wrapper with at most
/// `w` chains.
fn raw_decisions(core: &Core, max_width: u32) -> Vec<Decision> {
    (1..=max_width)
        .map(|w| {
            let (design, time) = best_design_up_to(core, w);
            let stored = u64::from(core.pattern_count())
                * design.scan_in_length()
                * u64::from(design.chain_count());
            Decision {
                test_time: time,
                volume_bits: stored,
                decompressor: None,
                lfsr_len: None,
                technique: Technique::Raw,
            }
        })
        .collect()
}

fn build_profile(
    core: &Core,
    max_width: u32,
    config: &DecisionConfig,
    token: &CancelToken,
) -> CoreProfile {
    let mut cfg = ProfileConfig::new(max_width);
    if let Some(s) = config.pattern_sample {
        cfg = cfg.pattern_sample(s);
    }
    if config.m_candidates != usize::MAX {
        cfg = cfg.m_candidates(config.m_candidates.max(2));
    }
    CoreProfile::build_cancellable(core, &cfg, &|| token.is_cancelled())
}

/// Shared-decompressor decision: the TAM's decompressor expands its `w`
/// wires to the *widest* `m` of the width class (no per-core search — the
/// very policy Fig. 2 shows to be suboptimal); smaller cores use a subset
/// of the outputs.
fn per_tam_decision(core: &Core, w: u32, config: &DecisionConfig) -> Decision {
    if w < SliceCode::MIN_TAM_WIDTH {
        // A degenerate TAM too narrow for any slice code falls back to raw
        // wrapper access.
        return raw_decisions(core, w)[(w - 1) as usize];
    }
    let m_max = *SliceCode::feasible_chains(w).end();
    let m = m_max.min(core.max_wrapper_chains());
    let c = evaluate_clamped(core, m, config.pattern_sample);
    Decision {
        test_time: c.test_time,
        // The stream still arrives on the TAM's w wires.
        volume_bits: c.codewords * u64::from(w),
        decompressor: Some((w, c.code.chains())),
        lfsr_len: None,
        technique: Technique::SelectiveEncoding,
    }
}

fn reseed_decision(core: &Core, w: u32, config: &DecisionConfig) -> Option<Decision> {
    let opts = ReseedOptions {
        pattern_sample: config.pattern_sample,
        ..Default::default()
    };
    let max_chains = core.max_wrapper_chains();
    let mut best: Option<Decision> = None;
    let mut candidates: Vec<u32> = [w, 2 * w, 4 * w, 8 * w, 16 * w]
        .into_iter()
        .map(|m| m.clamp(1, max_chains))
        .collect();
    candidates.dedup();
    for m in candidates {
        if let Ok(r) = compress_reseeding(core, m, w, &opts) {
            let d = Decision {
                test_time: r.test_time,
                volume_bits: r.volume_bits,
                decompressor: Some((w, r.chains)),
                lfsr_len: Some(r.lfsr_len as u32),
                technique: Technique::Reseeding,
            };
            if best.is_none_or(|b| d.test_time < b.test_time) {
                best = Some(d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(density: f64) -> Core {
        let mut core = Core::builder("d")
            .inputs(16)
            .outputs(16)
            .flexible_cells(800, 256)
            .pattern_count(10)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 33);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn no_tdc_table_is_monotone() {
        let core = prepared(0.3);
        let t = DecisionTable::build(&core, CompressionMode::None, 16, &DecisionConfig::exact());
        let mut prev = u64::MAX;
        for w in 1..=16 {
            let d = t.decision(w).unwrap();
            assert!(d.test_time <= prev, "w={w}");
            assert!(d.decompressor.is_none());
            prev = d.test_time;
        }
    }

    #[test]
    fn per_core_beats_or_matches_no_tdc_everywhere() {
        let core = prepared(0.05);
        let cfg = DecisionConfig::default();
        let none = DecisionTable::build(&core, CompressionMode::None, 12, &cfg);
        let tdc = DecisionTable::build(&core, CompressionMode::PerCore, 12, &cfg);
        for w in 1..=12 {
            let a = tdc.decision(w).unwrap().test_time;
            let b = none.decision(w).unwrap().test_time;
            assert!(a <= b, "w={w}: TDC {a} vs raw {b}");
        }
    }

    #[test]
    fn per_core_uses_decompressor_on_sparse_cubes() {
        let core = prepared(0.02);
        let t = DecisionTable::build(
            &core,
            CompressionMode::PerCore,
            10,
            &DecisionConfig::default(),
        );
        let d = t.decision(10).unwrap();
        assert!(d.decompressor.is_some(), "sparse cubes must engage TDC");
        let (w, m) = d.decompressor.unwrap();
        assert!(w <= 10);
        assert!(m > w, "expansion means m > w");
    }

    #[test]
    fn per_core_bypasses_on_dense_cubes() {
        let core = prepared(0.9);
        let t = DecisionTable::build(
            &core,
            CompressionMode::PerCore,
            8,
            &DecisionConfig::default(),
        );
        let d = t.decision(8).unwrap();
        assert!(
            d.decompressor.is_none(),
            "nearly fully specified cubes cannot compress"
        );
    }

    #[test]
    fn per_tam_pins_max_m() {
        let core = prepared(0.05);
        let cfg = DecisionConfig::default();
        let t = DecisionTable::build(&core, CompressionMode::PerTam, 10, &cfg);
        let d = t.decision(10).unwrap();
        let (w, m) = d.decompressor.unwrap();
        assert_eq!(w, 10);
        // Width class of w = 10 tops out at 255; the core caps at 256+32.
        assert_eq!(m, 255);
        // Per-core search can only be at least as good.
        let pc = DecisionTable::build(&core, CompressionMode::PerCore, 10, &cfg);
        assert!(pc.decision(10).unwrap().test_time <= d.test_time);
    }

    #[test]
    fn fixed_width_only_operates_at_or_above_its_width() {
        let core = prepared(0.05);
        let t = DecisionTable::build(
            &core,
            CompressionMode::FixedWidth(4),
            8,
            &DecisionConfig::default(),
        );
        assert!(t.decision(3).is_none());
        let d4 = t.decision(4).unwrap();
        let d8 = t.decision(8).unwrap();
        assert_eq!(d4, d8, "fixed-width mode cannot exploit wider TAMs");
        assert_eq!(d4.decompressor.unwrap().0, 4);
    }

    #[test]
    fn reseeding_produces_decisions_with_seed_length() {
        let core = prepared(0.05);
        let t = DecisionTable::build(
            &core,
            CompressionMode::Reseeding,
            8,
            &DecisionConfig {
                pattern_sample: Some(4),
                m_candidates: 4,
            },
        );
        let d = t.decision(8).unwrap();
        assert!(d.lfsr_len.is_some());
        assert!(d.volume_bits < core.initial_volume_bits());
    }

    #[test]
    fn time_row_matches_decisions() {
        let core = prepared(0.2);
        let t = DecisionTable::build(&core, CompressionMode::None, 6, &DecisionConfig::exact());
        let row = t.time_row();
        assert_eq!(row.len(), 6);
        assert_eq!(row[3], Some(t.decision(4).unwrap().test_time));
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<String> = [
            CompressionMode::None,
            CompressionMode::PerCore,
            CompressionMode::PerTam,
            CompressionMode::FixedWidth(4),
            CompressionMode::Reseeding,
            CompressionMode::Fdr,
            CompressionMode::Select,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 7);
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(density: f64) -> Core {
        let mut core = Core::builder("s")
            .inputs(12)
            .outputs(12)
            .flexible_cells(900, 256)
            .pattern_count(8)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 51);
        core.attach_test_set(ts).unwrap();
        core
    }

    fn cfg() -> DecisionConfig {
        DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 8,
        }
    }

    #[test]
    fn fdr_decisions_are_running_minima() {
        let core = prepared(0.04);
        let t = DecisionTable::build(&core, CompressionMode::Fdr, 12, &cfg());
        let mut prev = u64::MAX;
        for w in 1..=12 {
            let d = t.decision(w).unwrap();
            assert!(d.test_time <= prev, "w={w}");
            assert_eq!(d.technique, Technique::Fdr);
            prev = d.test_time;
        }
    }

    #[test]
    fn select_dominates_every_single_technique() {
        let core = prepared(0.04);
        let sel = DecisionTable::build(&core, CompressionMode::Select, 12, &cfg());
        let pc = DecisionTable::build(&core, CompressionMode::PerCore, 12, &cfg());
        let fdr = DecisionTable::build(&core, CompressionMode::Fdr, 12, &cfg());
        let none = DecisionTable::build(&core, CompressionMode::None, 12, &cfg());
        for w in 1..=12 {
            let s = sel.decision(w).unwrap().test_time;
            assert!(s <= pc.decision(w).unwrap().test_time, "w={w} vs per-core");
            assert!(s <= fdr.decision(w).unwrap().test_time, "w={w} vs FDR");
            assert!(s <= none.decision(w).unwrap().test_time, "w={w} vs raw");
        }
    }

    #[test]
    fn select_records_the_winning_technique() {
        // Sparse, many-chain core: selective encoding should win at wide
        // interfaces; at width 3 FDR competes.
        let core = prepared(0.03);
        let sel = DecisionTable::build(&core, CompressionMode::Select, 12, &cfg());
        let winner = sel.decision(12).unwrap();
        assert_ne!(winner.technique, Technique::Reseeding);
        // Whatever wins, it must beat raw access on these sparse cubes.
        let raw = DecisionTable::build(&core, CompressionMode::None, 12, &cfg());
        assert!(winner.test_time < raw.decision(12).unwrap().test_time);
    }

    #[test]
    fn technique_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = [
            Technique::Raw,
            Technique::SelectiveEncoding,
            Technique::Reseeding,
            Technique::Fdr,
        ]
        .iter()
        .map(|t| t.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
