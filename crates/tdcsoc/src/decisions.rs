//! Per-core operating-point decisions for each compression style.
//!
//! For every candidate TAM width `w`, a *decision* fixes how the core would
//! be tested on a `w`-wire TAM — with which decompressor geometry `(w', m)`
//! if any — together with the resulting test time and tester data volume.
//! The tables feed the TAM scheduler (as a [`tam::CostModel`]) and are
//! consulted again after scheduling to report each core's chosen setting.

use std::ops::Range;

use fdr::compress_fdr;
use lfsr::{compress_reseeding, ReseedOptions};
use robust::CancelToken;
use selenc::{
    profile_entry_for_width, CoreProfile, EvalCache, ProfileConfig, ProfileEntry, SliceCode,
};
use soc_model::Core;

/// How test data reaches the cores (the paper's Fig. 4 alternatives plus
/// the comparison baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionMode {
    /// No compression: wrapper chains driven straight from TAM wires
    /// (Fig. 4(a)).
    None,
    /// One selective-encoding decompressor per core, with per-core
    /// optimized `(w, m)` and automatic bypass when raw access is faster —
    /// the paper's proposal (Fig. 4(c)).
    PerCore,
    /// One shared selective-encoding decompressor per TAM (Fig. 4(b),
    /// ≈ comparator \[18\]): every core on the TAM sees the same expansion
    /// geometry, pinned to the widest feasible `m` (no per-core search).
    PerTam,
    /// Per-core decompressors with the input width pinned
    /// (≈ comparator \[11\], which only operates at `w = 4`).
    FixedWidth(u32),
    /// LFSR reseeding with per-pattern seeds (≈ comparator \[13\]).
    Reseeding,
    /// Frequency-directed run-length coding with one serial decompressor
    /// per TAM wire (≈ the compression-driven TAM design of \[10\]).
    Fdr,
    /// Per-core compression-technique selection: every core independently
    /// picks the fastest of {raw, selective encoding, FDR} at each width
    /// (the authors' ATS 2008 follow-up direction).
    Select,
}

impl CompressionMode {
    /// Short label used in reports.
    pub fn label(self) -> String {
        match self {
            CompressionMode::None => "no-TDC".into(),
            CompressionMode::PerCore => "TDC/core".into(),
            CompressionMode::PerTam => "TDC/TAM".into(),
            CompressionMode::FixedWidth(w) => format!("TDC w={w}"),
            CompressionMode::Reseeding => "reseeding".into(),
            CompressionMode::Fdr => "FDR".into(),
            CompressionMode::Select => "select".into(),
        }
    }
}

/// The compression technique a decision settles on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Technique {
    /// Raw wrapper access, no decompressor.
    #[default]
    Raw,
    /// Selective encoding (the paper's scheme).
    SelectiveEncoding,
    /// LFSR reseeding.
    Reseeding,
    /// Frequency-directed run-length coding.
    Fdr,
}

impl Technique {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Raw => "raw",
            Technique::SelectiveEncoding => "selenc",
            Technique::Reseeding => "reseed",
            Technique::Fdr => "fdr",
        }
    }
}

/// One core's operating point on a TAM of a given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Test time in clock cycles.
    pub test_time: u64,
    /// Tester data volume in bits (stimuli only, as in the paper).
    pub volume_bits: u64,
    /// Decompressor geometry `(w, m)`, or `None` for raw wrapper access.
    pub decompressor: Option<(u32, u32)>,
    /// Seed register length when LFSR reseeding is used.
    pub lfsr_len: Option<u32>,
    /// The technique this decision uses.
    pub technique: Technique,
}

/// Decision table of one core: `table[w - 1]` is the operating point on a
/// `w`-wire TAM (`None` when the core cannot be tested at that width under
/// the chosen mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTable {
    name: String,
    table: Vec<Option<Decision>>,
}

/// Tuning knobs shared by all decision builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionConfig {
    /// Evaluate at most this many evenly spaced patterns per operating
    /// point (`None` = exact).
    pub pattern_sample: Option<usize>,
    /// Chain counts tried per width class when searching for the best `m`.
    pub m_candidates: usize,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            pattern_sample: Some(24),
            m_candidates: 24,
        }
    }
}

impl DecisionConfig {
    /// Exact evaluation (full test set, every chain count) — use on small
    /// benchmarks only.
    pub fn exact() -> Self {
        DecisionConfig {
            pattern_sample: None,
            m_candidates: usize::MAX,
        }
    }
}

impl DecisionTable {
    /// Builds the table of `core` for `mode`, covering widths
    /// `1..=max_width`.
    ///
    /// # Panics
    ///
    /// Panics if the core has no attached test set (modes with
    /// compression), or `max_width == 0`.
    pub fn build(
        core: &Core,
        mode: CompressionMode,
        max_width: u32,
        config: &DecisionConfig,
    ) -> Self {
        Self::build_with(core, mode, max_width, config, &CancelToken::never())
    }

    /// Deadline-aware variant of [`build`](DecisionTable::build): polls
    /// `token` between operating-point evaluations and, once it trips,
    /// fills the remaining widths with the cheap raw (uncompressed)
    /// decision instead of searching for a decompressor.
    ///
    /// Every width still gets a usable decision, so planning proceeds on a
    /// complete cost model — just at degraded fidelity for the widths the
    /// budget did not cover.
    ///
    /// # Panics
    ///
    /// As [`build`](DecisionTable::build).
    pub fn build_with(
        core: &Core,
        mode: CompressionMode,
        max_width: u32,
        config: &DecisionConfig,
        token: &CancelToken,
    ) -> Self {
        let job = TableJob::new(core, mode, max_width, config);
        let part = job.compute(job.width_range(), token);
        job.assemble(vec![part])
    }

    /// The core's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of widths covered.
    pub fn max_width(&self) -> u32 {
        self.table.len() as u32
    }

    /// The decision on a `w`-wire TAM (widths above the table saturate).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn decision(&self, w: u32) -> Option<Decision> {
        assert!(w > 0, "TAM width must be positive");
        let w = w.min(self.table.len() as u32);
        self.table[(w - 1) as usize]
    }

    /// Test times only, in the shape [`tam::CostModel`] expects.
    pub fn time_row(&self) -> Vec<Option<u64>> {
        self.table.iter().map(|d| d.map(|d| d.test_time)).collect()
    }
}

/// The per-width work computed by [`TableJob::compute`] — everything that
/// is expensive and independent, leaving the width-coupled logic (running
/// minima, profile assembly, raw fallbacks) to [`TableJob::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WidthWork {
    /// The cancel token tripped before this width was evaluated; assembly
    /// degrades it to the raw (uncompressed) decision where the mode allows.
    Skipped,
    /// The mode computes nothing per width (raw-only modes).
    Nothing,
    /// A profile operating point (`None` = width class infeasible).
    Entry(Option<ProfileEntry>),
    /// A finished decision (`None` = no decision at this width).
    Decision(Option<Decision>),
    /// Technique selection: both candidate operating points.
    Select {
        /// Selective-encoding profile entry at this width.
        entry: Option<ProfileEntry>,
        /// FDR decision at this width (before the running minimum).
        fdr: Option<Decision>,
    },
}

/// A previously built profile plus the width range it is authoritative
/// for. Profiles are cached per *core content* (fingerprint-keyed), not
/// per width budget, so a profile built for width 16 legitimately answers
/// a width-24 build for its first 16 widths — the remaining widths are the
/// only ones recomputed (the incremental rebuild).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CachedProfile {
    /// The cached per-core lookup table.
    pub(crate) profile: CoreProfile,
    /// Widths `1..=covered` were searched when this profile was built; an
    /// absent entry below this bound means the width class is infeasible,
    /// while widths above it simply were never evaluated.
    pub(crate) covered: u32,
}

/// The results of one width chunk of a [`TableJob`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TablePart {
    /// First width covered (1-based).
    start: u32,
    /// Work items for widths `start..start + work.len()`.
    work: Vec<WidthWork>,
}

impl TablePart {
    /// A part whose whole range went unevaluated because the pool dropped
    /// the task after cancellation; assembly degrades it like any other
    /// skipped width.
    pub(crate) fn skipped(range: Range<u32>) -> Self {
        TablePart {
            start: range.start,
            work: range.map(|_| WidthWork::Skipped).collect(),
        }
    }
}

/// A decision-table build split into independently computable width
/// chunks, sharing one [`EvalCache`] so overlapping operating points are
/// evaluated once no matter how the chunks are scheduled.
///
/// The protocol: [`width_chunks`](TableJob::width_chunks) partitions the
/// width axis, [`compute`](TableJob::compute) runs anywhere (the job is
/// `Sync`; the planner schedules chunks on a [`parpool::Pool`]), and
/// [`assemble`](TableJob::assemble) folds the parts — in width order —
/// into the exact table the serial builder produces.
#[derive(Debug)]
pub(crate) struct TableJob<'a> {
    core: &'a Core,
    mode: CompressionMode,
    /// Index the table by the TAM's internal width `m` instead of the
    /// decompressor input width (the planner's shared-decompressor variant
    /// under a TAM-wire budget).
    internal: bool,
    max_width: u32,
    config: &'a DecisionConfig,
    profile_cfg: ProfileConfig,
    cache: EvalCache<'a>,
    /// A previously built profile for exactly this (core content,
    /// sampling) configuration: widths up to its covered bound answer from
    /// it instead of running the per-width operating-point search, wider
    /// widths are computed and merged. The caller owns the cache keying —
    /// a mismatched profile here produces a wrong table.
    cached: Option<CachedProfile>,
}

impl<'a> TableJob<'a> {
    /// Prepares a build of `core`'s table for `mode` over widths
    /// `1..=max_width`.
    ///
    /// # Panics
    ///
    /// Panics if `max_width == 0`.
    pub(crate) fn new(
        core: &'a Core,
        mode: CompressionMode,
        max_width: u32,
        config: &'a DecisionConfig,
    ) -> Self {
        assert!(max_width > 0, "width budget must be positive");
        let mut profile_cfg = ProfileConfig::new(max_width);
        if let Some(s) = config.pattern_sample {
            profile_cfg = profile_cfg.pattern_sample(s);
        }
        if config.m_candidates != usize::MAX {
            profile_cfg = profile_cfg.m_candidates(config.m_candidates.max(2));
        }
        TableJob {
            core,
            mode,
            internal: false,
            max_width,
            config,
            profile_cfg,
            cache: EvalCache::new(core),
            cached: None,
        }
    }

    /// Supplies a cached profile (see the `cached` field). Only the
    /// profile-driven modes (`PerCore`, `Select`) consult it.
    pub(crate) fn with_cached_profile(mut self, profile: Option<CachedProfile>) -> Self {
        self.cached = profile;
        self
    }

    /// Content fingerprint of the core, via the shared [`EvalCache`] so it
    /// is computed at most once per job (the planner uses it to key the
    /// on-disk profile cache).
    pub(crate) fn content_stamp(&self) -> u64 {
        self.cache.content_stamp()
    }

    /// Combined hit/miss/eviction counters of this job's in-memory memo
    /// caches (the wrapper-design cache plus the operating-point
    /// evaluation memo), for [`PlanStats`](crate::PlanStats) rollup.
    pub(crate) fn memo_stats(&self) -> robust::CacheStats {
        let mut stats = self.cache.designs().stats();
        stats.absorb(self.cache.stats());
        stats
    }

    /// As [`new`](TableJob::new), but for the shared-decompressor mode
    /// under an *internal* wire budget: `table[m - 1]` is the operating
    /// point when the TAM's internal width is `m` (the decompressor input
    /// width follows from the slice code).
    pub(crate) fn per_tam_internal(
        core: &'a Core,
        max_width: u32,
        config: &'a DecisionConfig,
    ) -> Self {
        let mut job = Self::new(core, CompressionMode::PerTam, max_width, config);
        job.internal = true;
        job
    }

    /// The full width range of this job (`1..max_width + 1`).
    pub(crate) fn width_range(&self) -> Range<u32> {
        1..self.max_width + 1
    }

    /// Partitions the width axis into chunks of at most `chunk` widths.
    pub(crate) fn width_chunks(&self, chunk: u32) -> Vec<Range<u32>> {
        let chunk = chunk.max(1);
        (1..=self.max_width)
            .step_by(chunk as usize)
            .map(|start| start..(start + chunk).min(self.max_width + 1))
            .collect()
    }

    /// Evaluates the widths of `range`, polling `token` between operating
    /// points; after cancellation the remaining widths report
    /// [`WidthWork::Skipped`].
    pub(crate) fn compute(&self, range: Range<u32>, token: &CancelToken) -> TablePart {
        let start = range.start;
        let work = range
            .map(|w| {
                if token.is_cancelled() {
                    return WidthWork::Skipped;
                }
                self.compute_width(w, token)
            })
            .collect();
        TablePart { start, work }
    }

    fn compute_width(&self, w: u32, token: &CancelToken) -> WidthWork {
        let cancelled = || token.is_cancelled();
        if self.internal {
            let m_use = w.min(self.core.max_wrapper_chains());
            let c = self
                .cache
                .evaluate_clamped(m_use, self.config.pattern_sample);
            return WidthWork::Decision(Some(Decision {
                test_time: c.test_time,
                volume_bits: c.volume_bits,
                decompressor: Some((c.code.tam_width(), c.code.chains())),
                lfsr_len: None,
                technique: Technique::SelectiveEncoding,
            }));
        }
        match self.mode {
            CompressionMode::None => WidthWork::Nothing,
            CompressionMode::PerCore => {
                if w < SliceCode::MIN_TAM_WIDTH {
                    // No slice code fits; raw bypass decides these widths.
                    return WidthWork::Entry(None);
                }
                if let Some(cached) = self.cached.as_ref().filter(|c| w <= c.covered) {
                    // An absent entry below the covered bound means the
                    // width is infeasible, exactly like `Ok(None)` below.
                    return WidthWork::Entry(cached.profile.entry_at(w).copied());
                }
                match profile_entry_for_width(&self.cache, w, &self.profile_cfg, &cancelled) {
                    Ok(entry) => WidthWork::Entry(entry),
                    Err(_) => WidthWork::Skipped,
                }
            }
            CompressionMode::PerTam => WidthWork::Decision(Some(self.per_tam_decision(w))),
            CompressionMode::FixedWidth(wf) => {
                // Only the pinned width needs an evaluation; it is computed
                // by whichever chunk covers it.
                if w == wf && wf >= SliceCode::MIN_TAM_WIDTH {
                    match profile_entry_for_width(&self.cache, wf, &self.profile_cfg, &cancelled) {
                        Ok(entry) => WidthWork::Entry(entry),
                        Err(_) => WidthWork::Skipped,
                    }
                } else {
                    WidthWork::Nothing
                }
            }
            CompressionMode::Reseeding => {
                WidthWork::Decision(reseed_decision(self.core, w, self.config))
            }
            CompressionMode::Fdr => WidthWork::Decision(Some(self.fdr_decision(w))),
            CompressionMode::Select => {
                let entry = if w < SliceCode::MIN_TAM_WIDTH {
                    None
                } else if let Some(cached) = self.cached.as_ref().filter(|c| w <= c.covered) {
                    cached.profile.entry_at(w).copied()
                } else {
                    match profile_entry_for_width(&self.cache, w, &self.profile_cfg, &cancelled) {
                        Ok(entry) => entry,
                        Err(_) => return WidthWork::Skipped,
                    }
                };
                if cancelled() {
                    return WidthWork::Skipped;
                }
                WidthWork::Select {
                    entry,
                    fdr: Some(self.fdr_decision(w)),
                }
            }
        }
    }

    /// Folds the parts (which must cover `1..=max_width` exactly, in
    /// order) into the finished table.
    ///
    /// # Panics
    ///
    /// Panics if the parts do not tile the width range.
    pub(crate) fn assemble(&self, parts: Vec<TablePart>) -> DecisionTable {
        self.assemble_with_profile(parts).0
    }

    /// As [`assemble`](TableJob::assemble), but also hands back the
    /// [`CoreProfile`] the profile-driven modes built along the way —
    /// `Some` only when it is safe to cache: a profile mode, an external
    /// width budget, and *no* width skipped by cancellation (a skipped
    /// width in a stored profile would later read as infeasible).
    ///
    /// # Panics
    ///
    /// As [`assemble`](TableJob::assemble).
    pub(crate) fn assemble_with_profile(
        &self,
        parts: Vec<TablePart>,
    ) -> (DecisionTable, Option<CoreProfile>) {
        let mut work: Vec<WidthWork> = Vec::with_capacity(self.max_width as usize);
        for part in parts {
            assert_eq!(
                part.start,
                work.len() as u32 + 1,
                "table parts must tile the width range in order"
            );
            work.extend(part.work);
        }
        assert_eq!(work.len() as u32, self.max_width, "missing width parts");

        let raw: Vec<Decision> = (1..=self.max_width).map(|w| self.raw_decision(w)).collect();
        let mut built_profile: Option<CoreProfile> = None;
        let table: Vec<Option<Decision>> = if self.internal {
            work.iter()
                .enumerate()
                .map(|(i, ww)| match ww {
                    WidthWork::Decision(d) => *d,
                    // Cancelled before evaluation: degrade to raw access.
                    _ => Some(raw[i]),
                })
                .collect()
        } else {
            match self.mode {
                CompressionMode::None => raw.iter().copied().map(Some).collect(),
                CompressionMode::PerCore => {
                    let profile = self.profile_from(&work);
                    let table = (1..=self.max_width)
                        .map(|w| Some(merge_tdc(&profile, w, raw[(w - 1) as usize])))
                        .collect();
                    built_profile = Some(profile);
                    table
                }
                CompressionMode::PerTam => work
                    .iter()
                    .enumerate()
                    .map(|(i, ww)| match ww {
                        WidthWork::Decision(d) => *d,
                        _ => Some(raw[i]),
                    })
                    .collect(),
                CompressionMode::FixedWidth(wf) => {
                    let target = wf.min(self.max_width);
                    let entry = match &work[(target - 1) as usize] {
                        WidthWork::Entry(e) => e.map(entry_decision),
                        // A tripped token can leave the pinned width
                        // unevaluated; degrade to raw access rather than
                        // declaring the core unschedulable.
                        WidthWork::Skipped => Some(raw[(target - 1) as usize]),
                        _ => None,
                    };
                    (1..=self.max_width)
                        .map(|w| if w >= wf { entry } else { None })
                        .collect()
                }
                CompressionMode::Reseeding => work
                    .iter()
                    .enumerate()
                    .map(|(i, ww)| match ww {
                        WidthWork::Decision(d) => *d,
                        _ => Some(raw[i]),
                    })
                    .collect(),
                CompressionMode::Fdr => {
                    // Running minimum: wires may be left unused.
                    let mut best: Option<Decision> = None;
                    work.iter()
                        .enumerate()
                        .map(|(i, ww)| match ww {
                            WidthWork::Decision(Some(d)) => {
                                if best.is_none_or(|b| d.test_time < b.test_time) {
                                    best = Some(*d);
                                }
                                best
                            }
                            _ => Some(best.unwrap_or(raw[i])),
                        })
                        .collect()
                }
                CompressionMode::Select => {
                    let profile = self.profile_from(&work);
                    let mut fdr_best: Option<Decision> = None;
                    let table = work
                        .iter()
                        .enumerate()
                        .map(|(i, ww)| {
                            let w = i as u32 + 1;
                            let selenc_d = merge_tdc(&profile, w, raw[i]);
                            let fdr_d = match ww {
                                WidthWork::Select { fdr: Some(d), .. } => {
                                    if fdr_best.is_none_or(|b| d.test_time < b.test_time) {
                                        fdr_best = Some(*d);
                                    }
                                    fdr_best
                                }
                                _ => Some(fdr_best.unwrap_or(raw[i])),
                            };
                            [Some(selenc_d), fdr_d]
                                .into_iter()
                                .flatten()
                                .min_by_key(|d| d.test_time)
                        })
                        .collect();
                    built_profile = Some(profile);
                    table
                }
            }
        };
        let complete = !work.iter().any(|ww| matches!(ww, WidthWork::Skipped));
        (
            DecisionTable {
                name: self.core.name().to_string(),
                table,
            },
            built_profile.filter(|_| complete),
        )
    }

    /// Collects the profile entries scattered across the work items into a
    /// [`CoreProfile`] (chunks are in width order, so entries arrive
    /// strictly increasing).
    fn profile_from(&self, work: &[WidthWork]) -> CoreProfile {
        let entries: Vec<ProfileEntry> = work
            .iter()
            .filter_map(|ww| match ww {
                WidthWork::Entry(e) | WidthWork::Select { entry: e, .. } => *e,
                _ => None,
            })
            .collect();
        CoreProfile::from_entries(self.core.name(), entries)
    }

    /// Raw (uncompressed) decision at width `w`: the best wrapper with at
    /// most `w` chains, answered from the design cache's prefix minimum.
    fn raw_decision(&self, w: u32) -> Decision {
        let point = self.cache.designs().best_up_to(w);
        let stored = u64::from(self.core.pattern_count())
            * point.design.scan_in_length()
            * u64::from(point.design.chain_count());
        Decision {
            test_time: point.test_time,
            volume_bits: stored,
            decompressor: None,
            lfsr_len: None,
            technique: Technique::Raw,
        }
    }

    /// Shared-decompressor decision: the TAM's decompressor expands its
    /// `w` wires to the *widest* `m` of the width class (no per-core
    /// search — the very policy Fig. 2 shows to be suboptimal); smaller
    /// cores use a subset of the outputs.
    fn per_tam_decision(&self, w: u32) -> Decision {
        if w < SliceCode::MIN_TAM_WIDTH {
            // A degenerate TAM too narrow for any slice code falls back to
            // raw wrapper access.
            return self.raw_decision(w);
        }
        let m_max = *SliceCode::feasible_chains(w).end();
        let m = m_max.min(self.core.max_wrapper_chains());
        let c = self.cache.evaluate_clamped(m, self.config.pattern_sample);
        Decision {
            test_time: c.test_time,
            // The stream still arrives on the TAM's w wires.
            volume_bits: c.codewords * u64::from(w),
            decompressor: Some((w, c.code.chains())),
            lfsr_len: None,
            technique: Technique::SelectiveEncoding,
        }
    }

    /// FDR decision at exactly width `w` (the running minimum across
    /// widths is applied during assembly).
    fn fdr_decision(&self, w: u32) -> Decision {
        let r = compress_fdr(self.core, w, self.config.pattern_sample);
        Decision {
            test_time: r.test_time,
            volume_bits: r.volume_bits,
            decompressor: None,
            lfsr_len: None,
            technique: Technique::Fdr,
        }
    }
}

/// A profile entry as a selective-encoding decision.
fn entry_decision(e: ProfileEntry) -> Decision {
    Decision {
        test_time: e.test_time,
        volume_bits: e.volume_bits,
        decompressor: Some((e.tam_width, e.chains)),
        lfsr_len: None,
        technique: Technique::SelectiveEncoding,
    }
}

/// The per-core TDC decision at width `w`: the profile's best operating
/// point at `≤ w` wires, with automatic bypass when raw access is faster.
fn merge_tdc(profile: &CoreProfile, w: u32, bypass: Decision) -> Decision {
    match profile.best_at_most(w).map(|e| entry_decision(*e)) {
        Some(t) if t.test_time < bypass.test_time => t,
        _ => bypass,
    }
}

fn reseed_decision(core: &Core, w: u32, config: &DecisionConfig) -> Option<Decision> {
    let opts = ReseedOptions {
        pattern_sample: config.pattern_sample,
        ..Default::default()
    };
    let max_chains = core.max_wrapper_chains();
    let mut best: Option<Decision> = None;
    let mut candidates: Vec<u32> = [w, 2 * w, 4 * w, 8 * w, 16 * w]
        .into_iter()
        .map(|m| m.clamp(1, max_chains))
        .collect();
    candidates.dedup();
    for m in candidates {
        if let Ok(r) = compress_reseeding(core, m, w, &opts) {
            let d = Decision {
                test_time: r.test_time,
                volume_bits: r.volume_bits,
                decompressor: Some((w, r.chains)),
                lfsr_len: Some(r.lfsr_len as u32),
                technique: Technique::Reseeding,
            };
            if best.is_none_or(|b| d.test_time < b.test_time) {
                best = Some(d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(density: f64) -> Core {
        let mut core = Core::builder("d")
            .inputs(16)
            .outputs(16)
            .flexible_cells(800, 256)
            .pattern_count(10)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 33);
        core.attach_test_set(ts).unwrap();
        core
    }

    #[test]
    fn no_tdc_table_is_monotone() {
        let core = prepared(0.3);
        let t = DecisionTable::build(&core, CompressionMode::None, 16, &DecisionConfig::exact());
        let mut prev = u64::MAX;
        for w in 1..=16 {
            let d = t.decision(w).unwrap();
            assert!(d.test_time <= prev, "w={w}");
            assert!(d.decompressor.is_none());
            prev = d.test_time;
        }
    }

    #[test]
    fn per_core_beats_or_matches_no_tdc_everywhere() {
        let core = prepared(0.05);
        let cfg = DecisionConfig::default();
        let none = DecisionTable::build(&core, CompressionMode::None, 12, &cfg);
        let tdc = DecisionTable::build(&core, CompressionMode::PerCore, 12, &cfg);
        for w in 1..=12 {
            let a = tdc.decision(w).unwrap().test_time;
            let b = none.decision(w).unwrap().test_time;
            assert!(a <= b, "w={w}: TDC {a} vs raw {b}");
        }
    }

    #[test]
    fn per_core_uses_decompressor_on_sparse_cubes() {
        let core = prepared(0.02);
        let t = DecisionTable::build(
            &core,
            CompressionMode::PerCore,
            10,
            &DecisionConfig::default(),
        );
        let d = t.decision(10).unwrap();
        assert!(d.decompressor.is_some(), "sparse cubes must engage TDC");
        let (w, m) = d.decompressor.unwrap();
        assert!(w <= 10);
        assert!(m > w, "expansion means m > w");
    }

    #[test]
    fn per_core_bypasses_on_dense_cubes() {
        let core = prepared(0.9);
        let t = DecisionTable::build(
            &core,
            CompressionMode::PerCore,
            8,
            &DecisionConfig::default(),
        );
        let d = t.decision(8).unwrap();
        assert!(
            d.decompressor.is_none(),
            "nearly fully specified cubes cannot compress"
        );
    }

    #[test]
    fn per_tam_pins_max_m() {
        let core = prepared(0.05);
        let cfg = DecisionConfig::default();
        let t = DecisionTable::build(&core, CompressionMode::PerTam, 10, &cfg);
        let d = t.decision(10).unwrap();
        let (w, m) = d.decompressor.unwrap();
        assert_eq!(w, 10);
        // Width class of w = 10 tops out at 255; the core caps at 256+32.
        assert_eq!(m, 255);
        // Per-core search can only be at least as good.
        let pc = DecisionTable::build(&core, CompressionMode::PerCore, 10, &cfg);
        assert!(pc.decision(10).unwrap().test_time <= d.test_time);
    }

    #[test]
    fn fixed_width_only_operates_at_or_above_its_width() {
        let core = prepared(0.05);
        let t = DecisionTable::build(
            &core,
            CompressionMode::FixedWidth(4),
            8,
            &DecisionConfig::default(),
        );
        assert!(t.decision(3).is_none());
        let d4 = t.decision(4).unwrap();
        let d8 = t.decision(8).unwrap();
        assert_eq!(d4, d8, "fixed-width mode cannot exploit wider TAMs");
        assert_eq!(d4.decompressor.unwrap().0, 4);
    }

    #[test]
    fn reseeding_produces_decisions_with_seed_length() {
        let core = prepared(0.05);
        let t = DecisionTable::build(
            &core,
            CompressionMode::Reseeding,
            8,
            &DecisionConfig {
                pattern_sample: Some(4),
                m_candidates: 4,
            },
        );
        let d = t.decision(8).unwrap();
        assert!(d.lfsr_len.is_some());
        assert!(d.volume_bits < core.initial_volume_bits());
    }

    #[test]
    fn time_row_matches_decisions() {
        let core = prepared(0.2);
        let t = DecisionTable::build(&core, CompressionMode::None, 6, &DecisionConfig::exact());
        let row = t.time_row();
        assert_eq!(row.len(), 6);
        assert_eq!(row[3], Some(t.decision(4).unwrap().test_time));
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::BTreeSet;
        let labels: BTreeSet<String> = [
            CompressionMode::None,
            CompressionMode::PerCore,
            CompressionMode::PerTam,
            CompressionMode::FixedWidth(4),
            CompressionMode::Reseeding,
            CompressionMode::Fdr,
            CompressionMode::Select,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 7);
    }
}

#[cfg(test)]
mod select_tests {
    use super::*;
    use soc_model::CubeSynthesis;

    fn prepared(density: f64) -> Core {
        let mut core = Core::builder("s")
            .inputs(12)
            .outputs(12)
            .flexible_cells(900, 256)
            .pattern_count(8)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density).synthesize(&core, 51);
        core.attach_test_set(ts).unwrap();
        core
    }

    fn cfg() -> DecisionConfig {
        DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 8,
        }
    }

    #[test]
    fn fdr_decisions_are_running_minima() {
        let core = prepared(0.04);
        let t = DecisionTable::build(&core, CompressionMode::Fdr, 12, &cfg());
        let mut prev = u64::MAX;
        for w in 1..=12 {
            let d = t.decision(w).unwrap();
            assert!(d.test_time <= prev, "w={w}");
            assert_eq!(d.technique, Technique::Fdr);
            prev = d.test_time;
        }
    }

    #[test]
    fn select_dominates_every_single_technique() {
        let core = prepared(0.04);
        let sel = DecisionTable::build(&core, CompressionMode::Select, 12, &cfg());
        let pc = DecisionTable::build(&core, CompressionMode::PerCore, 12, &cfg());
        let fdr = DecisionTable::build(&core, CompressionMode::Fdr, 12, &cfg());
        let none = DecisionTable::build(&core, CompressionMode::None, 12, &cfg());
        for w in 1..=12 {
            let s = sel.decision(w).unwrap().test_time;
            assert!(s <= pc.decision(w).unwrap().test_time, "w={w} vs per-core");
            assert!(s <= fdr.decision(w).unwrap().test_time, "w={w} vs FDR");
            assert!(s <= none.decision(w).unwrap().test_time, "w={w} vs raw");
        }
    }

    #[test]
    fn select_records_the_winning_technique() {
        // Sparse, many-chain core: selective encoding should win at wide
        // interfaces; at width 3 FDR competes.
        let core = prepared(0.03);
        let sel = DecisionTable::build(&core, CompressionMode::Select, 12, &cfg());
        let winner = sel.decision(12).unwrap();
        assert_ne!(winner.technique, Technique::Reseeding);
        // Whatever wins, it must beat raw access on these sparse cubes.
        let raw = DecisionTable::build(&core, CompressionMode::None, 12, &cfg());
        assert!(winner.test_time < raw.decision(12).unwrap().test_time);
    }

    #[test]
    fn technique_labels_are_distinct() {
        use std::collections::BTreeSet;
        let labels: BTreeSet<&str> = [
            Technique::Raw,
            Technique::SelectiveEncoding,
            Technique::Reseeding,
            Technique::Fdr,
        ]
        .iter()
        .map(|t| t.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
