//! Co-optimization of test-architecture design, test scheduling, and
//! core-level test-data compression — the contribution of *"Test-
//! Architecture Optimization and Test Scheduling for SOCs with Core-Level
//! Expansion of Compressed Test Patterns"* (Larsson, Larsson, Chakrabarty,
//! Eles, Peng — DATE 2008).
//!
//! The planner combines four ingredients:
//!
//! 1. per-core wrapper design (`wrapper` crate),
//! 2. per-core selective-encoding decompressors with co-optimized I/O
//!    widths (`selenc` crate),
//! 3. TAM partitioning and scheduling (`tam` crate),
//! 4. lookup-table driven width assignment that respects the
//!    **non-monotonic** test-time behaviour of Figs. 2–3.
//!
//! [`Planner`] instances exist for every architecture the paper compares:
//! no compression (Fig. 4(a)), a shared decompressor per TAM (Fig. 4(b),
//! ≈ \[18\]), a decompressor per core (Fig. 4(c), the proposal), a pinned
//! input width (≈ \[11\]), and LFSR reseeding (≈ \[13\]).
//!
//! # Examples
//!
//! ```
//! use soc_model::benchmarks::Design;
//! use tdcsoc::{PlanRequest, Planner};
//!
//! let soc = Design::System1.build_with_cubes(42);
//! let raw = Planner::no_tdc().plan(&soc, &PlanRequest::tam_width(32))?;
//! let tdc = Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(32))?;
//! // Industrial-density cubes compress by an order of magnitude.
//! assert!(tdc.test_time * 4 < raw.test_time);
//! # Ok::<(), tdcsoc::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ate;
mod cascade;
mod decisions;
mod planfile;
mod planner;
mod response;
mod truncate;
mod vectors;

pub use ate::{AteFit, AteSpec};
pub use cascade::{PlanControl, PlanOutcome, ProfileCacheConfig, SolverStage};
pub use decisions::{CompressionMode, Decision, DecisionConfig, DecisionTable, Technique};
pub use planfile::{parse_plan, write_plan, ParsePlanError};
pub use planner::{
    profile_cache_entries, quarantined_profiles, Budget, CoreSetting, Plan, PlanError, PlanRequest,
    PlanStats, Planner,
};
pub use response::{plan_response_compaction, CompactorSetting, ResponsePlan};
pub use truncate::{truncate_to_fit, TruncateError, Truncation};
pub use vectors::{export_image, verify_image, ImageError, TamImage, TesterImage};
