//! Plan-file serialization: a stable, line-oriented text format for
//! finished plans, so downstream tooling (vector generation, DFT insertion
//! scripts, sign-off reports) can consume planner output without linking
//! against this crate.
//!
//! ```text
//! plan v1
//! mode TDC/core
//! budget tam 24
//! time 94098
//! volume 1837019
//! outcome optimal
//! tams 12 12
//! core 0 ckt-1 tam 1 start 67095 time 26835 volume 265650 selenc decomp 10 204
//! core 1 ckt-2 tam 0 start 39114 time 27612 volume 273600 selenc decomp 10 229
//! …
//! ```
//!
//! The reader reconstructs a full [`Plan`] (with `cpu_time` zeroed) and
//! re-validates the schedule invariants on load.

use std::fmt::Write as _;
use std::time::Duration;

use soc_model::CoreId;
use tam::{Schedule, ScheduledTest};

use crate::cascade::{PlanOutcome, SolverStage};
use crate::decisions::{CompressionMode, Technique};
use crate::planner::{Budget, CoreSetting, Plan};

/// Serializes `plan` into the plan-file text format.
pub fn write_plan(plan: &Plan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "plan v1");
    let _ = writeln!(out, "mode {}", mode_keyword(plan.mode));
    let (kind, width) = match plan.budget {
        Budget::TamWidth(w) => ("tam", w),
        Budget::AteChannels(w) => ("ate", w),
    };
    let _ = writeln!(out, "budget {kind} {width}");
    let _ = writeln!(out, "time {}", plan.test_time);
    let _ = writeln!(out, "volume {}", plan.volume_bits);
    let _ = writeln!(out, "outcome {}", plan.outcome);
    let _ = write!(out, "tams");
    for w in plan.schedule.tam_widths() {
        let _ = write!(out, " {w}");
    }
    out.push('\n');
    for s in &plan.core_settings {
        let _ = write!(
            out,
            "core {} {} tam {} start {} time {} volume {} {}",
            s.core.0,
            s.name,
            s.tam,
            s.start,
            s.test_time,
            s.volume_bits,
            s.technique.label()
        );
        if let Some((w, m)) = s.decompressor {
            let _ = write!(out, " decomp {w} {m}");
        }
        if let Some(l) = s.lfsr_len {
            let _ = write!(out, " lfsr {l}");
        }
        out.push('\n');
    }
    out
}

/// Parses a plan file written by [`write_plan`].
///
/// # Errors
///
/// Returns [`ParsePlanError`] with the offending 1-based line number.
pub fn parse_plan(text: &str) -> Result<Plan, ParsePlanError> {
    let mut lines = text.lines().enumerate();
    let mut mode: Option<CompressionMode> = None;
    let mut budget: Option<Budget> = None;
    let mut time: Option<u64> = None;
    let mut volume: Option<u64> = None;
    let mut tam_widths: Option<Vec<u32>> = None;
    // Absent in pre-outcome files: those were written by unbounded runs.
    let mut outcome = PlanOutcome::Optimal;
    let mut settings: Vec<CoreSetting> = Vec::new();

    let header = lines.next().map(|(_, l)| l.trim());
    if header != Some("plan v1") {
        return Err(err(1, "expected header `plan v1`"));
    }
    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut t = line.split_whitespace();
        match t.next() {
            Some("mode") => {
                let kw = t.next().ok_or_else(|| err(idx + 1, "mode needs a value"))?;
                mode = Some(parse_mode(kw).ok_or_else(|| err(idx + 1, "unknown mode"))?);
            }
            Some("budget") => {
                let kind = t
                    .next()
                    .ok_or_else(|| err(idx + 1, "budget needs a kind"))?;
                let w: u32 = num(t.next(), idx)?;
                budget = Some(match kind {
                    "tam" => Budget::TamWidth(w),
                    "ate" => Budget::AteChannels(w),
                    _ => return Err(err(idx + 1, "budget kind must be tam|ate")),
                });
            }
            Some("time") => time = Some(num(t.next(), idx)?),
            Some("volume") => volume = Some(num(t.next(), idx)?),
            Some("outcome") => outcome = parse_outcome(&mut t, idx)?,
            Some("tams") => {
                let widths: Result<Vec<u32>, _> = t.map(|w| w.parse()).collect();
                let widths = widths.map_err(|_| err(idx + 1, "bad TAM width"))?;
                if widths.is_empty() {
                    return Err(err(idx + 1, "tams line lists no widths"));
                }
                tam_widths = Some(widths);
            }
            Some("core") => settings.push(parse_core_line(&mut t, idx)?),
            Some(other) => {
                return Err(err(idx + 1, &format!("unknown keyword `{other}`")));
            }
            // Whitespace-only lines have no first token; they were already
            // skipped above, but a `continue` costs nothing and keeps this
            // parser free of panic paths.
            None => continue,
        }
    }

    let mode = mode.ok_or_else(|| err(0, "missing `mode` line"))?;
    let budget = budget.ok_or_else(|| err(0, "missing `budget` line"))?;
    let test_time = time.ok_or_else(|| err(0, "missing `time` line"))?;
    let volume_bits = volume.ok_or_else(|| err(0, "missing `volume` line"))?;
    let tam_widths = tam_widths.ok_or_else(|| err(0, "missing `tams` line"))?;

    settings.sort_by_key(|s| s.core.0);
    let tests: Vec<ScheduledTest> = settings
        .iter()
        .map(|s| ScheduledTest {
            core: s.core.0,
            tam: s.tam,
            start: s.start,
            duration: s.test_time,
        })
        .collect();
    let schedule = Schedule::new(tam_widths, tests);

    // Structural re-validation: TAM indices in range, no overlap.
    for s in &settings {
        if s.tam >= schedule.tam_widths().len() {
            return Err(err(
                0,
                &format!("core {} references unknown TAM {}", s.name, s.tam),
            ));
        }
    }
    for tam in 0..schedule.tam_widths().len() {
        let mut slots: Vec<&ScheduledTest> =
            schedule.tests().iter().filter(|t| t.tam == tam).collect();
        slots.sort_by_key(|t| t.start);
        for pair in slots.windows(2) {
            let [first, second] = pair else { continue };
            // checked_add: a corrupt file can carry start/duration pairs
            // that overflow u64 — reject, never panic.
            match first.start.checked_add(first.duration) {
                Some(end) if end <= second.start => {}
                Some(_) => return Err(err(0, &format!("cores overlap on TAM {tam}"))),
                None => {
                    return Err(err(
                        0,
                        &format!("core start+duration overflows on TAM {tam}"),
                    ))
                }
            }
        }
    }
    if schedule.makespan() > test_time {
        return Err(err(0, "schedule exceeds the declared test time"));
    }

    let routed_wires = u64::from(schedule.total_width());
    let ate_channels = schedule.total_width();
    // The per-core tam_width fields are redundant; the schedule is
    // authoritative.
    let widths = schedule.tam_widths().to_vec();
    for s in &mut settings {
        // In range: every `s.tam` was validated against the schedule above.
        if let Some(&w) = widths.get(s.tam) {
            s.tam_width = w;
        }
    }
    Ok(Plan {
        mode,
        budget,
        test_time,
        volume_bits,
        schedule,
        core_settings: settings,
        routed_wires,
        ate_channels,
        cpu_time: Duration::ZERO,
        outcome,
    })
}

fn parse_outcome<'a>(
    t: &mut impl Iterator<Item = &'a str>,
    idx: usize,
) -> Result<PlanOutcome, ParsePlanError> {
    let stage = |tok: Option<&str>| -> Result<SolverStage, ParsePlanError> {
        tok.and_then(SolverStage::from_keyword)
            .ok_or_else(|| err(idx + 1, "outcome needs a solver stage"))
    };
    match t.next() {
        Some("optimal") => Ok(PlanOutcome::Optimal),
        Some("degraded") => Ok(PlanOutcome::Degraded(stage(t.next())?)),
        Some("interrupted") => Ok(PlanOutcome::Interrupted(stage(t.next())?)),
        _ => Err(err(idx + 1, "outcome must be optimal|degraded|interrupted")),
    }
}

fn parse_core_line<'a>(
    t: &mut impl Iterator<Item = &'a str>,
    idx: usize,
) -> Result<CoreSetting, ParsePlanError> {
    let core: usize = num(t.next(), idx)?;
    let name = t
        .next()
        .ok_or_else(|| err(idx + 1, "core line needs a name"))?
        .to_string();
    expect(t.next(), "tam", idx)?;
    let tam: usize = num(t.next(), idx)?;
    expect(t.next(), "start", idx)?;
    let start: u64 = num(t.next(), idx)?;
    expect(t.next(), "time", idx)?;
    let test_time: u64 = num(t.next(), idx)?;
    expect(t.next(), "volume", idx)?;
    let volume_bits: u64 = num(t.next(), idx)?;
    let technique = match t.next() {
        Some("raw") => Technique::Raw,
        Some("selenc") => Technique::SelectiveEncoding,
        Some("reseed") => Technique::Reseeding,
        Some("fdr") => Technique::Fdr,
        _ => return Err(err(idx + 1, "core line needs a technique")),
    };
    let mut decompressor = None;
    let mut lfsr_len = None;
    while let Some(kw) = t.next() {
        match kw {
            "decomp" => {
                let w: u32 = num(t.next(), idx)?;
                let m: u32 = num(t.next(), idx)?;
                // A zero width or chain count would panic deep inside the
                // wrapper designer when the plan is later expanded into a
                // vector image — reject it here, at the trust boundary.
                if w == 0 || m == 0 {
                    return Err(err(idx + 1, "decomp width and chains must be positive"));
                }
                decompressor = Some((w, m));
            }
            "lfsr" => lfsr_len = Some(num(t.next(), idx)?),
            other => return Err(err(idx + 1, &format!("unknown core field `{other}`"))),
        }
    }
    Ok(CoreSetting {
        core: CoreId(core),
        name,
        tam,
        tam_width: 0, // fixed up below from the schedule
        start,
        test_time,
        volume_bits,
        decompressor,
        lfsr_len,
        technique,
    })
}

fn mode_keyword(mode: CompressionMode) -> String {
    mode.label()
}

fn parse_mode(kw: &str) -> Option<CompressionMode> {
    Some(match kw {
        "no-TDC" => CompressionMode::None,
        "TDC/core" => CompressionMode::PerCore,
        "TDC/TAM" => CompressionMode::PerTam,
        "reseeding" => CompressionMode::Reseeding,
        "FDR" => CompressionMode::Fdr,
        "select" => CompressionMode::Select,
        _ => {
            let w = kw.strip_prefix("TDC")?.trim().strip_prefix("w=")?;
            CompressionMode::FixedWidth(w.parse().ok()?)
        }
    })
}

fn num<T: std::str::FromStr>(tok: Option<&str>, idx: usize) -> Result<T, ParsePlanError> {
    tok.and_then(|s| s.parse().ok())
        .ok_or_else(|| err(idx + 1, "expected a number"))
}

fn expect(tok: Option<&str>, kw: &str, idx: usize) -> Result<(), ParsePlanError> {
    if tok == Some(kw) {
        Ok(())
    } else {
        Err(err(idx + 1, &format!("expected `{kw}`")))
    }
}

fn err(line: usize, message: &str) -> ParsePlanError {
    ParsePlanError {
        line,
        message: message.to_string(),
    }
}

/// Error produced by [`parse_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    line: usize,
    message: String,
}

impl ParsePlanError {
    /// 1-based line of the offending content (0 for file-level errors).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParsePlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionConfig;
    use crate::planner::{PlanRequest, Planner};
    use soc_model::benchmarks::Design;

    fn a_plan() -> Plan {
        let soc = Design::D695.build_with_cubes(6);
        Planner::per_core_tdc()
            .plan(
                &soc,
                &PlanRequest::tam_width(16).with_decisions(DecisionConfig {
                    pattern_sample: Some(8),
                    m_candidates: 8,
                }),
            )
            .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything_observable() {
        let plan = a_plan();
        let text = write_plan(&plan);
        let parsed = parse_plan(&text).unwrap();
        assert_eq!(parsed.mode, plan.mode);
        assert_eq!(parsed.budget, plan.budget);
        assert_eq!(parsed.test_time, plan.test_time);
        assert_eq!(parsed.volume_bits, plan.volume_bits);
        assert_eq!(parsed.core_settings, plan.core_settings);
        // Schedules match up to test ordering (the writer emits core-id
        // order, the planner kept scheduling order).
        assert_eq!(parsed.schedule.tam_widths(), plan.schedule.tam_widths());
        assert_eq!(parsed.schedule.makespan(), plan.schedule.makespan());
        let mut a = parsed.schedule.tests().to_vec();
        let mut b = plan.schedule.tests().to_vec();
        a.sort_by_key(|t| t.core);
        b.sort_by_key(|t| t.core);
        assert_eq!(a, b);
    }

    #[test]
    fn header_and_structure_are_enforced() {
        assert!(parse_plan("nonsense").is_err());
        assert!(parse_plan("plan v1\n").is_err(), "missing sections");
        let text = write_plan(&a_plan());
        let broken = text.replace("budget tam 16", "budget bogus 16");
        assert!(parse_plan(&broken).is_err());
    }

    #[test]
    fn zero_decompressor_dimensions_are_rejected_at_parse() {
        // A crafted plan file with `decomp W 0` (or `0 M`) used to parse
        // and then panic deep in the wrapper designer, which asserts
        // `m > 0`. The trust boundary is here, so the parser rejects it.
        let text = write_plan(&a_plan());
        assert!(text.contains(" decomp "), "fixture plan carries a TDC");
        let first_decomp = |t: &str, sub: &str, to: String| t.replacen(sub, &to, 1);
        let (w, m) = {
            let line = text.lines().find(|l| l.contains(" decomp ")).unwrap();
            let mut it = line.rsplit(' ');
            let m: u32 = it.next().unwrap().parse().unwrap();
            let w: u32 = it.next().unwrap().parse().unwrap();
            (w, m)
        };
        let zero_m = first_decomp(&text, &format!("decomp {w} {m}"), format!("decomp {w} 0"));
        let zero_w = first_decomp(&text, &format!("decomp {w} {m}"), format!("decomp 0 {m}"));
        for broken in [zero_m, zero_w] {
            let e = parse_plan(&broken).unwrap_err();
            assert!(e.to_string().contains("must be positive"), "got: {e}");
        }
    }

    #[test]
    fn bad_numbers_are_located() {
        let text = write_plan(&a_plan());
        let broken = text.replace("time", "time zzz");
        let e = parse_plan(&broken).unwrap_err();
        assert!(e.line() > 0);
        assert!(e.to_string().contains("line"));
    }

    #[test]
    fn overlap_in_file_is_rejected() {
        let text = "plan v1\nmode no-TDC\nbudget tam 4\ntime 100\nvolume 5\ntams 4\n\
                    core 0 a tam 0 start 0 time 60 volume 2 raw\n\
                    core 1 b tam 0 start 30 time 40 volume 3 raw\n";
        let e = parse_plan(text).unwrap_err();
        assert!(e.to_string().contains("overlap"));
    }

    #[test]
    fn outcome_line_roundtrips_and_defaults_to_optimal() {
        let plan = a_plan();
        for outcome in [
            PlanOutcome::Optimal,
            PlanOutcome::Degraded(SolverStage::Greedy),
            PlanOutcome::Interrupted(SolverStage::Anneal),
        ] {
            let mut stamped = plan.clone();
            stamped.outcome = outcome;
            let text = write_plan(&stamped);
            assert_eq!(parse_plan(&text).unwrap().outcome, outcome);
        }
        // Pre-outcome files (written before the field existed) parse as
        // optimal.
        let legacy: String = write_plan(&plan)
            .lines()
            .filter(|l| !l.starts_with("outcome"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(parse_plan(&legacy).unwrap().outcome, PlanOutcome::Optimal);
        // A malformed outcome is a parse error, not a panic.
        let broken = write_plan(&plan).replace("outcome optimal", "outcome degraded warp");
        assert!(parse_plan(&broken).is_err());
    }

    #[test]
    fn overflowing_start_plus_duration_is_rejected() {
        let max = u64::MAX;
        let text = format!(
            "plan v1\nmode no-TDC\nbudget tam 4\ntime {max}\nvolume 5\ntams 4\n\
             core 0 a tam 0 start 1 time {max} volume 2 raw\n\
             core 1 b tam 0 start 2 time 1 volume 3 raw\n"
        );
        let e = parse_plan(&text).unwrap_err();
        assert!(e.to_string().contains("overflow"), "got: {e}");
    }

    #[test]
    fn all_modes_roundtrip_their_keyword() {
        for mode in [
            CompressionMode::None,
            CompressionMode::PerCore,
            CompressionMode::PerTam,
            CompressionMode::FixedWidth(4),
            CompressionMode::Reseeding,
            CompressionMode::Fdr,
            CompressionMode::Select,
        ] {
            assert_eq!(parse_mode(&mode_keyword(mode)), Some(mode), "{mode:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = write_plan(&a_plan());
        let commented = format!(
            "plan v1\n# note\n\n{}",
            text.strip_prefix("plan v1\n").unwrap()
        );
        assert!(parse_plan(&commented).is_ok());
    }
}
