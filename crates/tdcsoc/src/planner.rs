//! The co-optimization planner (paper §3): wrapper design, decompressor
//! sizing, TAM partitioning and test scheduling, solved together.

use std::fmt;
use std::ops::Range;
use std::path::Path;
use std::time::{Duration, Instant};

use parpool::Pool;
use selenc::SliceCode;
use soc_model::{CoreId, Soc};
use tam::{Architecture, ArchitectureOptions, CostModel, Schedule, ScheduleError};

use crate::cascade::{self, PlanControl, PlanOutcome, ProfileCacheConfig, SolverStage};
use crate::decisions::{
    CachedProfile, CompressionMode, DecisionConfig, DecisionTable, TableJob, TablePart, Technique,
};
use selenc::CoreProfile;

/// What the wire budget counts.
///
/// For per-core decompression the two coincide (the decompressor sits at
/// the core, so ATE channels = TAM wires). They differ for the SOC-level
/// decompression baseline (≈ \[18\]): few ATE channels can fan out to many
/// internal TAM wires — cheap in tester channels, expensive in routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Constrain the on-chip TAM wires (the paper's Table 2 and Table 3).
    TamWidth(u32),
    /// Constrain the tester channels (the paper's Table 1).
    AteChannels(u32),
}

impl Budget {
    /// The numeric wire budget.
    pub fn width(self) -> u32 {
        match self {
            Budget::TamWidth(w) | Budget::AteChannels(w) => w,
        }
    }
}

/// A planning request: the budget plus evaluation and search knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// The wire budget.
    pub budget: Budget,
    /// Evaluation fidelity (pattern sampling, `m` search breadth).
    pub decisions: DecisionConfig,
    /// Architecture search knobs.
    pub architecture: ArchitectureOptions,
}

impl PlanRequest {
    /// A TAM-width-constrained request with default fidelity.
    pub fn tam_width(w: u32) -> Self {
        PlanRequest {
            budget: Budget::TamWidth(w),
            decisions: DecisionConfig::default(),
            architecture: ArchitectureOptions::default(),
        }
    }

    /// An ATE-channel-constrained request with default fidelity.
    pub fn ate_channels(w: u32) -> Self {
        PlanRequest {
            budget: Budget::AteChannels(w),
            decisions: DecisionConfig::default(),
            architecture: ArchitectureOptions::default(),
        }
    }

    /// Switches to exact (unsampled, exhaustive-`m`) evaluation.
    pub fn exact(mut self) -> Self {
        self.decisions = DecisionConfig::exact();
        self
    }

    /// Overrides the evaluation fidelity.
    pub fn with_decisions(mut self, cfg: DecisionConfig) -> Self {
        self.decisions = cfg;
        self
    }
}

/// The co-optimizing planner; one instance per compression mode.
///
/// # Examples
///
/// ```
/// use soc_model::benchmarks::Design;
/// use tdcsoc::{PlanRequest, Planner};
///
/// let soc = Design::D695.build_with_cubes(1);
/// let no_tdc = Planner::no_tdc().plan(&soc, &PlanRequest::tam_width(16))?;
/// let tdc = Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(16))?;
/// assert!(tdc.test_time <= no_tdc.test_time);
/// # Ok::<(), tdcsoc::PlanError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planner {
    mode: CompressionMode,
}

impl Planner {
    /// Plain wrapper/TAM co-optimization without compression (Fig. 4(a)).
    pub fn no_tdc() -> Self {
        Planner {
            mode: CompressionMode::None,
        }
    }

    /// The paper's proposal: a decompressor per core, co-optimized
    /// (Fig. 4(c)).
    pub fn per_core_tdc() -> Self {
        Planner {
            mode: CompressionMode::PerCore,
        }
    }

    /// One shared decompressor per TAM (Fig. 4(b), ≈ \[18\]).
    pub fn per_tam_tdc() -> Self {
        Planner {
            mode: CompressionMode::PerTam,
        }
    }

    /// Per-core decompressors pinned to input width `w` (≈ \[11\]).
    pub fn fixed_width_tdc(w: u32) -> Self {
        Planner {
            mode: CompressionMode::FixedWidth(w),
        }
    }

    /// LFSR-reseeding compression (≈ \[13\]).
    pub fn reseeding_tdc() -> Self {
        Planner {
            mode: CompressionMode::Reseeding,
        }
    }

    /// FDR run-length compression, one serial decompressor per wire
    /// (≈ \[10\]).
    pub fn fdr_tdc() -> Self {
        Planner {
            mode: CompressionMode::Fdr,
        }
    }

    /// Per-core compression-technique selection over {raw, selective
    /// encoding, FDR} (the authors' ATS 2008 follow-up direction).
    pub fn select_tdc() -> Self {
        Planner {
            mode: CompressionMode::Select,
        }
    }

    /// The compression mode this planner optimizes for.
    pub fn mode(&self) -> CompressionMode {
        self.mode
    }

    /// Plans the SOC test: builds per-core decision tables, partitions the
    /// budget into TAMs, assigns and schedules the cores, and reports test
    /// time, data volume, and per-core settings.
    ///
    /// # Errors
    ///
    /// * [`PlanError::MissingTestSet`] — a compression mode needs cubes and
    ///   a core has none.
    /// * [`PlanError::Schedule`] — no feasible architecture exists (e.g.
    ///   zero budget, or a core infeasible at every width).
    pub fn plan(&self, soc: &Soc, request: &PlanRequest) -> Result<Plan, PlanError> {
        self.plan_with(soc, request, &PlanControl::default())
    }

    /// [`plan`](Planner::plan) under a fault-tolerant execution harness:
    /// a wall-clock deadline, an external cancel token, and optional
    /// checkpoint/resume (see [`PlanControl`]).
    ///
    /// With a bounded deadline the architecture search runs the solver
    /// cascade (greedy → exhaustive → anneal) and the returned
    /// [`Plan::outcome`] records how the search concluded; decision-table
    /// evaluation degrades to raw (uncompressed) operating points for the
    /// widths the budget did not cover. The plan is always feasible — an
    /// already-expired deadline still yields the single-TAM baseline.
    ///
    /// # Errors
    ///
    /// As [`plan`](Planner::plan), plus
    /// [`ScheduleError::Interrupted`] (wrapped in [`PlanError::Schedule`])
    /// when the token was cancelled before *any* feasible architecture was
    /// found, and [`PlanError::StreamVerification`] when the default
    /// plan-time stream check fails (see
    /// [`PlanControl::skip_stream_verification`]).
    pub fn plan_with(
        &self,
        soc: &Soc,
        request: &PlanRequest,
        control: &PlanControl,
    ) -> Result<Plan, PlanError> {
        self.plan_with_stats(soc, request, control)
            .map(|(plan, _)| plan)
    }

    /// [`plan_with`](Planner::plan_with), additionally reporting
    /// [`PlanStats`]: how effective the on-disk profile cache was (full
    /// hits, prefix reuse, misses, widths recomputed) and how much stream
    /// verification the finished plan underwent.
    ///
    /// # Errors
    ///
    /// As [`plan_with`](Planner::plan_with).
    pub fn plan_with_stats(
        &self,
        soc: &Soc,
        request: &PlanRequest,
        control: &PlanControl,
    ) -> Result<(Plan, PlanStats), PlanError> {
        // soclint: allow(wall-clock) -- stamps the reported cpu_time only; no search decision reads it
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let width = request.budget.width();
        if width == 0 {
            return Err(PlanError::Schedule(ScheduleError::BadPartition {
                total_width: 0,
                tams: 0,
            }));
        }
        if self.mode != CompressionMode::None {
            for core in soc.cores() {
                if core.test_set().is_none() {
                    return Err(PlanError::MissingTestSet {
                        core: core.name().to_string(),
                    });
                }
            }
        }

        let token = control.token.with_deadline(control.deadline);
        // The tables may eat the whole budget on a large SOC; reserve a
        // slice for the architecture search so a bounded run always gets
        // to schedule something.
        let table_token = if token.deadline().remaining().is_some() {
            token.with_deadline(token.deadline().fraction(TABLE_SLICE))
        } else {
            token.clone()
        };

        let internal_budget =
            self.mode == CompressionMode::PerTam && matches!(request.budget, Budget::TamWidth(_));
        // One job per core (sharing that core's evaluation cache), fanned
        // out as (core × width-chunk) tasks on a bounded pool: workers that
        // finish a cheap core's chunk steal the next, so one expensive core
        // no longer serializes the phase and small machines are not
        // oversubscribed with a thread per core. Results are assembled in
        // core and width order, so the plan stays deterministic at any
        // worker count.
        // The profile cache applies only to the profile-driven modes with
        // an external width budget. Entries are keyed by each core's
        // content fingerprint (computed once per job, via the shared
        // evaluation cache) rather than the width budget: a cached profile
        // covering at least `width` widths is a full hit that skips the
        // per-width operating-point search entirely, a shorter one answers
        // its prefix and only the remaining widths are computed, and a
        // miss rebuilds from scratch — the incremental-rebuild contract.
        let cacheable_mode = !internal_budget
            && matches!(
                self.mode,
                CompressionMode::PerCore | CompressionMode::Select
            );
        let profile_cache = control.profile_cache.as_ref().filter(|_| cacheable_mode);
        let mut stats = PlanStats::default();
        let mut cache_use: Vec<CacheUse> = Vec::with_capacity(soc.cores().len());
        let jobs: Vec<TableJob> = soc
            .cores()
            .iter()
            .map(|core| {
                if internal_budget {
                    cache_use.push(CacheUse::Uncached);
                    return TableJob::per_tam_internal(core, width, &request.decisions);
                }
                let job = TableJob::new(core, self.mode, width, &request.decisions);
                let Some(cache) = profile_cache else {
                    cache_use.push(CacheUse::Uncached);
                    return job;
                };
                let cached = read_cached_profile(
                    cache,
                    core.name(),
                    job.content_stamp(),
                    &request.decisions,
                );
                cache_use.push(match &cached {
                    Some(c) if c.covered >= width => CacheUse::Full,
                    Some(c) => CacheUse::Partial(c.covered),
                    None => CacheUse::Miss,
                });
                job.with_cached_profile(cached)
            })
            .collect();
        let chunks: Vec<(usize, Range<u32>)> = jobs
            .iter()
            .enumerate()
            .flat_map(|(i, job)| {
                job.width_chunks(TABLE_CHUNK)
                    .into_iter()
                    .map(move |r| (i, r))
            })
            .collect();
        let tasks: Vec<_> = chunks
            .iter()
            .map(|(i, range)| {
                let job = &jobs[*i];
                let token = &table_token;
                let range = range.clone();
                move || job.compute(range, token)
            })
            .collect();
        let pool = match request.architecture.workers {
            Some(w) => Pool::with_workers(w),
            None => Pool::new(),
        }
        .labeled("tables");
        let parts = pool.run_with(&table_token, tasks);
        let mut per_core: Vec<Vec<TablePart>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        for ((i, range), part) in chunks.into_iter().zip(parts) {
            per_core[i].push(part.unwrap_or_else(|| TablePart::skipped(range)));
        }
        let tables: Vec<DecisionTable> = jobs
            .iter()
            .zip(per_core)
            .zip(&cache_use)
            .map(|((job, parts), use_)| {
                let (table, profile) = job.assemble_with_profile(parts);
                match *use_ {
                    CacheUse::Full => {
                        stats.profile_hits += 1;
                        stats.widths_reused += u64::from(width);
                    }
                    CacheUse::Partial(covered) => {
                        stats.profile_partial_hits += 1;
                        stats.widths_reused += u64::from(covered);
                        stats.widths_computed += u64::from(width - covered);
                    }
                    CacheUse::Miss => {
                        stats.profile_misses += 1;
                        stats.widths_computed += u64::from(width);
                    }
                    CacheUse::Uncached => {}
                }
                // A full hit is already on disk verbatim; partial hits and
                // misses store the (merged) profile under the new covered
                // bound, so the next run with the same content hits fully.
                if let (Some(cache), Some(profile), false) =
                    (profile_cache, profile, matches!(use_, CacheUse::Full))
                {
                    stats.profile_evictions += write_cached_profile(
                        cache,
                        &profile,
                        job.content_stamp(),
                        width,
                        &request.decisions,
                    );
                }
                table
            })
            .collect();
        for job in &jobs {
            stats.memo.absorb(job.memo_stats());
        }

        let mut cost = CostModel::new(width);
        for t in &tables {
            let row = t.time_row();
            if row.iter().all(Option::is_none) {
                return Err(PlanError::Schedule(ScheduleError::CoreUnschedulable {
                    core: soc
                        .cores()
                        .iter()
                        .position(|c| c.name() == t.name())
                        .unwrap_or(0),
                }));
            }
            cost.push_core(t.name(), row);
        }

        // A checkpointed schedule seeds the search when it still fits the
        // freshly built cost model; anything stale or incompatible is
        // discarded (a bad checkpoint must never be worse than none).
        let incumbent: Option<(Architecture, SolverStage)> = control
            .resume
            .as_ref()
            .filter(|prev| {
                prev.schedule.total_width() == width && prev.schedule.validate(&cost).is_ok()
            })
            .map(|prev| {
                (
                    Architecture {
                        test_time: prev.schedule.makespan(),
                        schedule: prev.schedule.clone(),
                    },
                    SolverStage::Resume,
                )
            });

        let mut on_improve = |arch: &Architecture, _stage: SolverStage| {
            if let Some(path) = &control.checkpoint {
                let plan = assemble_plan(
                    self.mode,
                    request.budget,
                    &tables,
                    arch,
                    PlanOutcome::Optimal,
                    start.elapsed(),
                );
                write_checkpoint(path, &plan);
            }
        };
        let result = cascade::solve(
            &cost,
            width,
            &request.architecture,
            &token,
            incumbent,
            &mut on_improve,
        )
        .map_err(PlanError::Schedule)?;
        debug_assert!(result.architecture.schedule.validate(&cost).is_ok());

        let plan = assemble_plan(
            self.mode,
            request.budget,
            &tables,
            &result.architecture,
            result.outcome,
            start.elapsed(),
        );
        if let Some(path) = &control.checkpoint {
            write_checkpoint(path, &plan);
        }
        if !control.skip_stream_verification {
            verify_plan_streams(soc, &plan, &mut stats)?;
        }
        Ok((plan, stats))
    }
}

/// Replays every selective-encoding operating point the plan instantiates
/// through the batched decompressor emulator
/// ([`selenc::verify_operating_point`]): each core's cubes are re-encoded
/// at its chosen `(w, m)` and the codeword stream decoded back, failing if
/// any care bit is not reconstructed. This is the verify-at-plan-time
/// contract — a returned plan's compressed streams are known-good, not
/// merely cost-estimated.
fn verify_plan_streams(soc: &Soc, plan: &Plan, stats: &mut PlanStats) -> Result<(), PlanError> {
    for setting in &plan.core_settings {
        if setting.technique != Technique::SelectiveEncoding {
            continue;
        }
        let Some((_, m)) = setting.decompressor else {
            continue;
        };
        let core = &soc.cores()[setting.core.0];
        match selenc::verify_operating_point(core, m) {
            Ok(report) => {
                stats.streams_verified += 1;
                stats.stream_words += report.codewords;
            }
            Err(error) => {
                return Err(PlanError::StreamVerification {
                    core: setting.name.clone(),
                    error,
                })
            }
        }
    }
    Ok(())
}

/// Work accounting for one [`Planner::plan_with_stats`] run: on-disk
/// profile-cache effectiveness and plan-time stream-verification totals.
///
/// Cache counters cover only cores the cache applies to (profile-driven
/// modes under an external width budget, with
/// [`PlanControl::profile_cache`] set); other cores count nowhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Cores whose cached profile covered the full width budget (no
    /// operating-point search ran, nothing was rewritten).
    pub profile_hits: usize,
    /// Cores whose cached profile covered a strict prefix of the width
    /// budget; only the widths above the covered bound were computed and
    /// the merged profile was rewritten.
    pub profile_partial_hits: usize,
    /// Cores with no valid cache entry — built from scratch (a corrupt
    /// entry is quarantined first and counts here).
    pub profile_misses: usize,
    /// Table widths answered from cached profiles.
    pub widths_reused: u64,
    /// Table widths whose operating-point search actually ran.
    pub widths_computed: u64,
    /// Selective-encoding streams replayed through the emulator at plan
    /// time (one per compressed core in the final plan).
    pub streams_verified: usize,
    /// Total codewords those verifications consumed.
    pub stream_words: u64,
    /// On-disk cache entries evicted by per-shard cap enforcement during
    /// this run's profile writes.
    pub profile_evictions: u64,
    /// Rolled-up counters of the in-memory memo caches (the per-core
    /// wrapper-design cache and operating-point evaluation memo) across
    /// every core job of the run.
    pub memo: robust::CacheStats,
}

impl PlanStats {
    /// Adds another run's counters into this one, for rolling per-design
    /// stats up into a fleet-wide total.
    pub fn absorb(&mut self, other: &PlanStats) {
        self.profile_hits += other.profile_hits;
        self.profile_partial_hits += other.profile_partial_hits;
        self.profile_misses += other.profile_misses;
        self.widths_reused = self.widths_reused.saturating_add(other.widths_reused);
        self.widths_computed = self.widths_computed.saturating_add(other.widths_computed);
        self.streams_verified += other.streams_verified;
        self.stream_words = self.stream_words.saturating_add(other.stream_words);
        self.profile_evictions = self
            .profile_evictions
            .saturating_add(other.profile_evictions);
        self.memo.absorb(other.memo);
    }
}

/// How one core's on-disk profile lookup went (the per-core input to
/// [`PlanStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheUse {
    /// Cached profile covered the full width budget.
    Full,
    /// Cached profile covered only widths `1..=covered`.
    Partial(u32),
    /// No valid cache entry for this core's content.
    Miss,
    /// The mode or configuration does not consult the on-disk cache.
    Uncached,
}

/// Fraction of the overall budget the decision-table builds may consume
/// before degrading to raw operating points.
const TABLE_SLICE: f64 = 0.5;

/// Widths per pool task. Small enough that uneven cores spread across
/// workers, large enough that a chunk amortizes its scheduling overhead
/// (consecutive widths also share cache hits within the task).
const TABLE_CHUNK: u32 = 4;

/// Turns a winning architecture into a full [`Plan`] (per-core settings,
/// volume and wire accounting).
fn assemble_plan(
    mode: CompressionMode,
    budget: Budget,
    tables: &[DecisionTable],
    arch: &Architecture,
    outcome: PlanOutcome,
    cpu_time: Duration,
) -> Plan {
    let mut settings = Vec::with_capacity(tables.len());
    let mut volume = 0u64;
    for test in arch.schedule.tests() {
        let tam_width = arch.schedule.tam_widths()[test.tam];
        let decision = tables[test.core]
            .decision(tam_width)
            .expect("scheduled cores have a decision at their TAM width");
        volume += decision.volume_bits;
        settings.push(CoreSetting {
            core: CoreId(test.core),
            name: tables[test.core].name().to_string(),
            tam: test.tam,
            tam_width,
            start: test.start,
            test_time: decision.test_time,
            volume_bits: decision.volume_bits,
            decompressor: decision.decompressor,
            lfsr_len: decision.lfsr_len,
            technique: decision.technique,
        });
    }
    settings.sort_by_key(|s| s.core.0);

    let (routed_wires, ate_channels) = wire_accounting(mode, budget, &arch.schedule, &settings);

    Plan {
        mode,
        budget,
        test_time: arch.test_time,
        volume_bits: volume,
        schedule: arch.schedule.clone(),
        core_settings: settings,
        routed_wires,
        ate_channels,
        cpu_time,
        outcome,
    }
}

/// Best-effort atomic checkpoint write: serialize next to the target and
/// rename into place, so a reader never sees a half-written plan. I/O
/// failures are swallowed — checkpointing must never fail the plan.
fn write_checkpoint(path: &Path, plan: &Plan) {
    let text = crate::planfile::write_plan(plan);
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Shard count of the on-disk profile cache. Entries are distributed
/// over `shard-0 … shard-f` subdirectories by the leading hex nibble of
/// their content stamp, so concurrent writers (fleet workers, multiple
/// processes sharing one cache root) rarely touch the same shard: each
/// shard has its own write journal and cap enforcement, and cross-shard
/// writes never contend on shared metadata at all.
const CACHE_SHARDS: usize = 16;

/// The shard subdirectory a content stamp lands in (its top hex nibble).
fn shard_dir(cache: &ProfileCacheConfig, stamp: u64) -> std::path::PathBuf {
    cache.dir.join(format!("shard-{:x}", stamp >> 60))
}

/// The whole-cache [`ProfileCacheConfig::limits`] scaled down to one
/// shard (each shard is capped independently; at least one entry per
/// shard so a tiny cap still caches something).
fn per_shard_limits(limits: robust::CacheLimits) -> robust::CacheLimits {
    robust::CacheLimits::new(
        (limits.max_entries / CACHE_SHARDS).max(1),
        (limits.max_bytes / CACHE_SHARDS).max(1),
    )
}

/// Every cached profile entry under a cache root, across all shards,
/// sorted by path. Test and tooling surface for the sharded layout — the
/// planner itself always addresses entries directly by stamp.
pub fn profile_cache_entries(root: &Path) -> Vec<std::path::PathBuf> {
    let mut entries = Vec::new();
    let Ok(shards) = std::fs::read_dir(root) else {
        return entries;
    };
    for shard in shards.flatten() {
        if !shard.file_name().to_string_lossy().starts_with("shard-") {
            continue;
        }
        let Ok(files) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        entries.extend(
            files
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "csv")),
        );
    }
    entries.sort();
    entries
}

/// Every quarantined profile file under a cache root (each shard keeps
/// its own `quarantine/` subdirectory), sorted by path.
pub fn quarantined_profiles(root: &Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    let Ok(shards) = std::fs::read_dir(root) else {
        return files;
    };
    for shard in shards.flatten() {
        if !shard.file_name().to_string_lossy().starts_with("shard-") {
            continue;
        }
        let Ok(entries) = std::fs::read_dir(shard.path().join("quarantine")) else {
            continue;
        };
        files.extend(entries.flatten().map(|e| e.path()));
    }
    files.sort();
    files
}

/// Cache file for one core's profile. Every input that shapes the profile
/// is part of the name: the caller's generation tag, the core's *content
/// fingerprint* ([`selenc::core_fingerprint`] — name, geometry, cubes),
/// and both sampling knobs, so editing a core or changing the sampling
/// misses cleanly instead of reusing a stale profile. The width budget is
/// deliberately *not* in the name: the file's `# cover` header records how
/// many widths the stored profile spans, so one entry serves every budget
/// up to that bound and a wider budget extends the same entry in place.
/// The file lives in the stamp's [`shard_dir`].
fn profile_cache_file(
    cache: &ProfileCacheConfig,
    core: &str,
    stamp: u64,
    config: &DecisionConfig,
) -> std::path::PathBuf {
    let sample = config
        .pattern_sample
        .map_or_else(|| "full".to_string(), |s| s.to_string());
    let mcand = if config.m_candidates == usize::MAX {
        "max".to_string()
    } else {
        config.m_candidates.to_string()
    };
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    };
    let (tag, core) = (sanitize(&cache.tag), sanitize(core));
    shard_dir(cache, stamp).join(format!("{tag}-{core}-{stamp:016x}-s{sample}-m{mcand}.csv"))
}

/// The self-checksummed first line of a cached profile file:
/// `# cover <n> fnv <hex>` records that widths `1..=n` were fully searched
/// when the profile was stored, so an absent entry at a width `≤ n` means
/// that width class is infeasible while widths `> n` were simply never
/// evaluated. The digest covers the `cover <n>` payload itself — the
/// profile body's own trailer cannot vouch for this line, so it carries
/// its own.
fn cover_line(covered: u32) -> String {
    let payload = format!("cover {covered}");
    let sum = selenc::fnv1a(selenc::FNV_OFFSET, payload.as_bytes());
    format!("# {payload} fnv {sum:016x}\n")
}

/// Parses and verifies a [`cover_line`], returning the covered bound.
fn parse_cover_line(line: &str) -> Option<u32> {
    let rest = line.trim().strip_prefix("# cover ")?;
    let mut parts = rest.split_whitespace();
    let covered: u32 = parts.next()?.parse().ok()?;
    if parts.next()? != "fnv" {
        return None;
    }
    let sum = u64::from_str_radix(parts.next()?, 16).ok()?;
    if parts.next().is_some() {
        return None;
    }
    let payload = format!("cover {covered}");
    (selenc::fnv1a(selenc::FNV_OFFSET, payload.as_bytes()) == sum).then_some(covered)
}

/// Reads a cached profile, or `None` on any miss — the cache can only
/// ever save work, never corrupt a plan.
///
/// Reads are *checked* twice over: the first line must be a valid
/// [`cover_line`] and the body must carry a valid integrity trailer
/// ([`CoreProfile::from_csv_checked`]), so a truncated write or a
/// bit-flipped digit is rejected instead of parsed into a numerically
/// plausible but wrong profile. A file that fails either check is moved
/// into the cache's `quarantine/` subdirectory (best-effort) and the
/// profile is rebuilt and rewritten by the normal miss path — affecting
/// only this core, never its neighbours.
fn read_cached_profile(
    cache: &ProfileCacheConfig,
    core: &str,
    stamp: u64,
    config: &DecisionConfig,
) -> Option<CachedProfile> {
    let path = profile_cache_file(cache, core, stamp, config);
    let csv = std::fs::read_to_string(&path).ok()?;
    let parsed = csv
        .lines()
        .next()
        .and_then(parse_cover_line)
        .and_then(|covered| {
            let body = csv.split_once('\n').map_or("", |(_, rest)| rest);
            CoreProfile::from_csv_checked(core, body)
                .ok()
                .map(|profile| CachedProfile { profile, covered })
        });
    if parsed.is_none() {
        quarantine_cache_file(&path);
    }
    parsed
}

/// Moves a corrupt cache file out of the lookup path, preserving it for
/// post-mortems under its shard's `quarantine/` subdirectory (keeping the
/// damage and its fallout confined to one shard). Falls back to deletion
/// when the move fails (a corrupt file must never be re-read as cache),
/// and gives up silently if even that fails — the rebuild path doesn't
/// depend on it.
fn quarantine_cache_file(path: &Path) {
    let (Some(name), Some(shard)) = (path.file_name(), path.parent()) else {
        return;
    };
    let dir = shard.join("quarantine");
    let moved =
        std::fs::create_dir_all(&dir).is_ok() && std::fs::rename(path, dir.join(name)).is_ok();
    if !moved {
        let _ = std::fs::remove_file(path);
    }
}

/// Best-effort cache write (atomic via rename); I/O failures are
/// swallowed — caching must never fail the plan. Each write is recorded
/// in the shard's index journal and followed by per-shard cap
/// enforcement, so the on-disk cache stays within
/// [`ProfileCacheConfig::limits`] (split evenly across shards).
///
/// Concurrent-writer safety: the temp file name is uniquified with the
/// process id and a process-wide counter, so two writers racing on the
/// *same* entry each stage a private temp file and the loser's rename
/// simply replaces the winner's identical content — no torn entries.
/// Returns the number of entries evicted by cap enforcement.
fn write_cached_profile(
    cache: &ProfileCacheConfig,
    profile: &CoreProfile,
    stamp: u64,
    covered: u32,
    config: &DecisionConfig,
) -> u64 {
    if std::fs::create_dir_all(shard_dir(cache, stamp)).is_err() {
        return 0;
    }
    let path = profile_cache_file(cache, profile.name(), stamp, config);
    let text = format!("{}{}", cover_line(covered), profile.to_csv());
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    let tmp = path.with_extension(format!("csv.{}-{seq}.tmp", std::process::id()));
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
        enforce_disk_cache_caps(cache, &path)
    } else {
        let _ = std::fs::remove_file(&tmp);
        0
    }
}

/// Name of the write-order journal inside each profile-cache shard.
const CACHE_JOURNAL: &str = "index.log";

/// Evicts the oldest cached profiles until the written entry's *shard* is
/// back under its file-count and byte caps (the whole-cache limits divided
/// by [`CACHE_SHARDS`]), returning how many entries were evicted.
///
/// "Oldest" is write order as recorded in the shard's journal — never
/// file mtimes, which would make eviction depend on filesystem clocks.
/// Cache files present but missing from the journal (a lost or truncated
/// journal, or a concurrent writer's entry that raced this journal
/// rewrite) are treated as oldest, in file-name order, so a damaged or
/// racy journal degrades to a deterministic fallback instead of unbounded
/// growth. All I/O is best-effort; readers never take locks — they only
/// ever see absent files (a miss) or complete renamed entries.
fn enforce_disk_cache_caps(cache: &ProfileCacheConfig, just_written: &Path) -> u64 {
    let Some(shard) = just_written.parent() else {
        return 0;
    };
    let limits = per_shard_limits(cache.limits);
    let journal_path = shard.join(CACHE_JOURNAL);
    let written_name = just_written
        .file_name()
        .map(|n| n.to_string_lossy().into_owned());

    // Live cache files in this shard and their sizes, by name.
    let mut sizes: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(shard) else {
        return 0;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.ends_with(".csv") {
            continue;
        }
        if let Ok(meta) = entry.metadata() {
            if meta.is_file() {
                sizes.insert(name, meta.len());
            }
        }
    }

    // Reconstruct write order: journal entries that still exist, oldest
    // first, preceded by any unjournaled files (name order) as "oldest",
    // followed by the file just written.
    let journal = std::fs::read_to_string(&journal_path).unwrap_or_default();
    let mut order: Vec<String> = Vec::new();
    let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let push =
        |name: &str, order: &mut Vec<String>, seen: &mut std::collections::BTreeSet<String>| {
            if sizes.contains_key(name) && seen.insert(name.to_string()) {
                order.push(name.to_string());
            }
        };
    let journaled: std::collections::BTreeSet<&str> = journal.lines().map(str::trim).collect();
    for name in sizes.keys() {
        if !journaled.contains(name.as_str()) && Some(name) != written_name.as_ref() {
            push(name, &mut order, &mut seen);
        }
    }
    for line in journal.lines() {
        let name = line.trim();
        if Some(name) != written_name.as_deref() {
            push(name, &mut order, &mut seen);
        }
    }
    if let Some(name) = &written_name {
        push(name, &mut order, &mut seen);
    }

    // Evict oldest-first until both caps hold.
    let mut total: u64 = order.iter().filter_map(|n| sizes.get(n)).sum();
    let mut keep_from = 0usize;
    for (i, name) in order.iter().enumerate() {
        let over_files = order.len() - i > limits.max_entries;
        let over_bytes = usize::try_from(total).unwrap_or(usize::MAX) > limits.max_bytes;
        if !over_files && !over_bytes {
            keep_from = i;
            break;
        }
        let _ = std::fs::remove_file(shard.join(name));
        total -= sizes.get(name).copied().unwrap_or(0);
        keep_from = i + 1;
    }

    // Rewrite the journal to the surviving order (atomic via rename).
    let mut text = String::new();
    for name in &order[keep_from..] {
        text.push_str(name);
        text.push('\n');
    }
    let tmp = journal_path.with_extension("log.tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, &journal_path);
    }
    keep_from as u64
}

/// `(routed on-chip wires, ATE channels)` of a finished plan.
fn wire_accounting(
    mode: CompressionMode,
    budget: Budget,
    schedule: &Schedule,
    settings: &[CoreSetting],
) -> (u64, u32) {
    match (mode, budget) {
        (CompressionMode::PerTam, Budget::AteChannels(_)) => {
            // ATE channels feed per-TAM decompressors whose m wires are
            // routed across the chip to the cores.
            let routed: u64 = schedule
                .tam_widths()
                .iter()
                .enumerate()
                .map(|(j, &w)| {
                    if w >= SliceCode::MIN_TAM_WIDTH {
                        let class_max = *SliceCode::feasible_chains(w).end();
                        let widest_user = settings
                            .iter()
                            .filter(|s| s.tam == j)
                            .filter_map(|s| s.decompressor.map(|(_, m)| m))
                            .max()
                            .unwrap_or(w);
                        u64::from(widest_user.min(class_max))
                    } else {
                        u64::from(w)
                    }
                })
                .sum();
            (routed, schedule.total_width())
        }
        (CompressionMode::PerTam, Budget::TamWidth(_)) => {
            // Internal wires are the budget; each TAM's decompressor input
            // is the (much narrower) slice-code width.
            let channels: u32 = schedule
                .tam_widths()
                .iter()
                .map(|&m| SliceCode::for_chains(m.max(1)).tam_width().min(m.max(1)))
                .sum();
            (u64::from(schedule.total_width()), channels)
        }
        // Per-core decompression (and the other modes): the TAM wires are
        // what is routed, and the ATE drives them directly.
        _ => (u64::from(schedule.total_width()), schedule.total_width()),
    }
}

/// A finished SOC test plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The compression mode planned for.
    pub mode: CompressionMode,
    /// The budget the plan was built under.
    pub budget: Budget,
    /// SOC test time in clock cycles.
    pub test_time: u64,
    /// Total tester stimulus volume in bits.
    pub volume_bits: u64,
    /// The winning schedule (TAM widths + start times).
    pub schedule: Schedule,
    /// Per-core operating points, sorted by core id.
    pub core_settings: Vec<CoreSetting>,
    /// On-chip wires routed from the budget source to the cores.
    pub routed_wires: u64,
    /// Tester channels consumed.
    pub ate_channels: u32,
    /// Wall-clock time spent planning.
    pub cpu_time: Duration,
    /// How the architecture search concluded (always
    /// [`PlanOutcome::Optimal`] for unbounded [`Planner::plan`] runs).
    pub outcome: PlanOutcome,
}

impl Plan {
    /// The number of TAMs in the architecture.
    pub fn tam_count(&self) -> usize {
        self.schedule.tam_widths().len()
    }

    /// Cores whose plan instantiates a decompressor.
    pub fn compressed_core_count(&self) -> usize {
        self.core_settings
            .iter()
            .filter(|s| s.decompressor.is_some())
            .count()
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] budget {:?}: τ = {} cycles, V = {} bits, {} TAMs, {} routed wires, {} ATE channels ({} ms)",
            self.mode.label(),
            self.budget,
            self.test_time,
            self.volume_bits,
            self.tam_count(),
            self.routed_wires,
            self.ate_channels,
            self.cpu_time.as_millis()
        )?;
        for s in &self.core_settings {
            write!(
                f,
                "  {:>12} on TAM{} (w={:>2}) start {:>10} τ={:>10} V={:>10}",
                s.name, s.tam, s.tam_width, s.start, s.test_time, s.volume_bits
            )?;
            match (s.decompressor, s.lfsr_len) {
                (Some((w, m)), Some(l)) => writeln!(f, "  reseed w={w} m={m} L={l}")?,
                (Some((w, m)), None) => writeln!(f, "  decomp {w}→{m}")?,
                _ => writeln!(f, "  {}", s.technique.label())?,
            }
        }
        Ok(())
    }
}

/// One core's final operating point in a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSetting {
    /// The core's id in the SOC.
    pub core: CoreId,
    /// The core's name.
    pub name: String,
    /// Index of its TAM.
    pub tam: usize,
    /// Width of its TAM.
    pub tam_width: u32,
    /// Scheduled start time.
    pub start: u64,
    /// Test time in cycles.
    pub test_time: u64,
    /// Tester data volume in bits.
    pub volume_bits: u64,
    /// Decompressor geometry `(w, m)` when one is instantiated.
    pub decompressor: Option<(u32, u32)>,
    /// Seed length when LFSR reseeding is used.
    pub lfsr_len: Option<u32>,
    /// The compression technique in use.
    pub technique: Technique,
}

/// Error produced by [`Planner::plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// A compression mode requires test cubes and this core has none.
    MissingTestSet {
        /// The offending core's name.
        core: String,
    },
    /// The architecture/scheduling layer failed.
    Schedule(ScheduleError),
    /// Plan-time stream verification failed: replaying a core's encoded
    /// test set through the decompressor emulator did not reconstruct
    /// every care bit (or produced a malformed stream). This signals an
    /// encoder/decoder defect or corrupted state — never a merely
    /// suboptimal plan — so the plan is withheld rather than returned
    /// unsound.
    StreamVerification {
        /// The offending core's name.
        core: String,
        /// The verifier's verdict.
        error: selenc::StreamError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::MissingTestSet { core } => write!(
                f,
                "core {core:?} has no test set; synthesize or attach cubes first"
            ),
            PlanError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            PlanError::StreamVerification { core, error } => write!(
                f,
                "core {core:?} failed plan-time stream verification: {error}"
            ),
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Schedule(e) => Some(e),
            PlanError::StreamVerification { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<ScheduleError> for PlanError {
    fn from(e: ScheduleError) -> Self {
        PlanError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionConfig;
    use soc_model::benchmarks::Design;
    use soc_model::Soc;

    fn industrial_soc() -> Soc {
        Design::System1.build_with_cubes(7)
    }

    fn fast(mut req: PlanRequest) -> PlanRequest {
        req.decisions = DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 8,
        };
        req
    }

    #[test]
    fn per_core_tdc_slashes_test_time_on_industrial_cores() {
        let soc = industrial_soc();
        let raw = Planner::no_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(32)))
            .unwrap();
        let tdc = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(32)))
            .unwrap();
        let ratio = raw.test_time as f64 / tdc.test_time as f64;
        assert!(ratio > 5.0, "time reduction only {ratio:.1}x");
        let vratio = raw.volume_bits as f64 / tdc.volume_bits as f64;
        assert!(vratio > 5.0, "volume reduction only {vratio:.1}x");
    }

    #[test]
    fn every_core_appears_once_with_consistent_settings() {
        let soc = industrial_soc();
        let plan = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(24)))
            .unwrap();
        assert_eq!(plan.core_settings.len(), soc.core_count());
        for (i, s) in plan.core_settings.iter().enumerate() {
            assert_eq!(s.core.0, i);
            assert!(s.tam < plan.tam_count());
            assert_eq!(s.tam_width, plan.schedule.tam_widths()[s.tam]);
            if let Some((w, m)) = s.decompressor {
                assert!(w <= s.tam_width, "decompressor input exceeds TAM");
                assert!(m >= w, "expansion requires m >= w");
            }
        }
        assert_eq!(
            plan.volume_bits,
            plan.core_settings
                .iter()
                .map(|s| s.volume_bits)
                .sum::<u64>()
        );
        assert_eq!(plan.test_time, plan.schedule.makespan());
    }

    #[test]
    fn fig4_per_core_matches_per_tam_time_with_narrower_routing() {
        // The paper's Fig. 4(b) vs (c): equal test time (same compression),
        // but per-core decompression routes far fewer on-chip wires under
        // an ATE-channel budget.
        let soc = industrial_soc();
        let per_tam = Planner::per_tam_tdc()
            .plan(&soc, &fast(PlanRequest::ate_channels(31)))
            .unwrap();
        let per_core = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::ate_channels(31)))
            .unwrap();
        // Same order of test time (per-core may be better thanks to m
        // search)…
        assert!(per_core.test_time <= per_tam.test_time * 11 / 10);
        // …but the shared decompressors force wide expanded TAMs across
        // the chip.
        assert!(
            per_tam.routed_wires > 3 * per_core.routed_wires,
            "per-TAM routes {} wires vs per-core {}",
            per_tam.routed_wires,
            per_core.routed_wires
        );
    }

    #[test]
    fn per_tam_under_internal_budget_is_worse_than_under_ate_budget() {
        // [18]'s weakness per the paper: at a TAM-wire constraint the
        // SOC-level decompressor cannot shine, because its expansion *is*
        // the constrained resource.
        let soc = industrial_soc();
        let ate = Planner::per_tam_tdc()
            .plan(&soc, &fast(PlanRequest::ate_channels(32)))
            .unwrap();
        let tamw = Planner::per_tam_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(32)))
            .unwrap();
        assert!(tamw.test_time > ate.test_time);
        assert_eq!(tamw.routed_wires, 32);
    }

    #[test]
    fn fixed_width_is_dominated_by_free_width_choice() {
        let soc = industrial_soc();
        let fixed = Planner::fixed_width_tdc(4)
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .unwrap();
        let free = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .unwrap();
        assert!(free.test_time <= fixed.test_time);
    }

    #[test]
    fn wider_budget_never_hurts() {
        let soc = industrial_soc();
        let narrow = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .unwrap();
        let wide = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(48)))
            .unwrap();
        assert!(wide.test_time <= narrow.test_time);
    }

    #[test]
    fn missing_test_set_reported_by_name() {
        let soc = Design::System1.build(); // no cubes
        let err = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .unwrap_err();
        assert!(matches!(err, PlanError::MissingTestSet { ref core } if core == "ckt-1"));
        // No-TDC planning works without cubes.
        assert!(Planner::no_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .is_ok());
    }

    #[test]
    fn zero_budget_is_a_schedule_error() {
        let soc = industrial_soc();
        assert!(matches!(
            Planner::no_tdc().plan(&soc, &fast(PlanRequest::tam_width(0))),
            Err(PlanError::Schedule(ScheduleError::BadPartition { .. }))
        ));
    }

    #[test]
    fn plan_display_lists_cores() {
        let soc = industrial_soc();
        let plan = Planner::per_core_tdc()
            .plan(&soc, &fast(PlanRequest::tam_width(16)))
            .unwrap();
        let s = plan.to_string();
        assert!(s.contains("ckt-1"));
        assert!(s.contains("TDC/core"));
    }

    #[test]
    fn budget_width_accessor() {
        assert_eq!(Budget::TamWidth(9).width(), 9);
        assert_eq!(Budget::AteChannels(4).width(), 4);
    }

    #[test]
    fn plan_with_default_control_matches_plan() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(24));
        let plain = Planner::per_core_tdc().plan(&soc, &req).unwrap();
        let controlled = Planner::per_core_tdc()
            .plan_with(&soc, &req, &PlanControl::default())
            .unwrap();
        assert_eq!(plain.test_time, controlled.test_time);
        assert_eq!(plain.schedule, controlled.schedule);
        assert_eq!(plain.outcome, PlanOutcome::Optimal);
    }

    #[test]
    fn tight_deadline_on_large_soc_degrades_but_delivers() {
        // The acceptance scenario: a deadline far below what the full
        // search needs must still produce a valid plan, marked degraded
        // (or interrupted), and return promptly.
        let soc = Design::P93791.build_with_cubes(11);
        let req = fast(PlanRequest::tam_width(32));
        // Asserting the deadline is honoured requires reading the clock.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        let plan = Planner::per_core_tdc()
            .plan_with(
                &soc,
                &req,
                &PlanControl::with_deadline(Duration::from_millis(100)),
            )
            .unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "deadline ignored: took {:?}",
            t0.elapsed()
        );
        assert_eq!(plan.core_settings.len(), soc.core_count());
        assert_eq!(plan.test_time, plan.schedule.makespan());
        // 100 ms cannot cover the full-fidelity table build + search on
        // ~100k flip-flops, so the run must report it was cut short.
        assert!(!plan.outcome.is_complete(), "outcome: {:?}", plan.outcome);
    }

    #[test]
    fn cancelled_token_interrupts_planning() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(24));
        let control = PlanControl {
            deadline: robust::Deadline::within(Duration::from_secs(60)),
            ..PlanControl::default()
        };
        control.token.cancel();
        let plan = Planner::per_core_tdc()
            .plan_with(&soc, &req, &control)
            .unwrap();
        assert!(matches!(plan.outcome, PlanOutcome::Interrupted(_)));
        assert_eq!(plan.core_settings.len(), soc.core_count());
    }

    /// A fresh, empty cache directory unique to `name` (removed first, so
    /// reruns start cold).
    fn cache_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tdcsoc-plancache-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cached_control(dir: &Path) -> PlanControl {
        PlanControl::default().cache_profiles_in(dir, "t")
    }

    #[test]
    fn cover_line_roundtrips_and_rejects_tampering() {
        for covered in [0u32, 1, 16, u32::MAX] {
            let line = cover_line(covered);
            assert_eq!(parse_cover_line(line.trim_end()), Some(covered));
        }
        // A flipped bound no longer matches its own checksum.
        let line = cover_line(16).replace("cover 16", "cover 17");
        assert_eq!(parse_cover_line(line.trim_end()), None);
        assert_eq!(parse_cover_line("# cover banana fnv 0"), None);
        assert_eq!(parse_cover_line("# profile of x"), None);
        assert_eq!(parse_cover_line(""), None);
    }

    #[test]
    fn profile_cache_misses_cold_and_hits_warm() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(16));
        let dir = cache_dir("warm");
        let control = cached_control(&dir);
        let (cold, s1) = Planner::per_core_tdc()
            .plan_with_stats(&soc, &req, &control)
            .unwrap();
        assert_eq!(s1.profile_misses, soc.core_count());
        assert_eq!(s1.profile_hits, 0);
        assert_eq!(s1.widths_computed, 16 * soc.core_count() as u64);
        let (warm, s2) = Planner::per_core_tdc()
            .plan_with_stats(&soc, &req, &control)
            .unwrap();
        assert_eq!(s2.profile_hits, soc.core_count());
        assert_eq!(s2.profile_misses, 0);
        assert_eq!(s2.widths_computed, 0);
        assert_eq!(cold.test_time, warm.test_time);
        assert_eq!(cold.core_settings, warm.core_settings);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wider_budget_extends_cached_profiles_in_place() {
        let soc = industrial_soc();
        let dir = cache_dir("extend");
        let control = cached_control(&dir);
        let planner = Planner::per_core_tdc();
        planner
            .plan_with(&soc, &fast(PlanRequest::tam_width(12)), &control)
            .unwrap();
        // The wider run reuses the 12 cached widths per core and computes
        // only the new ones — the width budget is not part of the key.
        let (wide, stats) = planner
            .plan_with_stats(&soc, &fast(PlanRequest::tam_width(20)), &control)
            .unwrap();
        assert_eq!(stats.profile_partial_hits, soc.core_count());
        assert_eq!(stats.widths_reused, 12 * soc.core_count() as u64);
        assert_eq!(stats.widths_computed, 8 * soc.core_count() as u64);
        // Bit-identical to a cold wide plan.
        let cold = planner
            .plan(&soc, &fast(PlanRequest::tam_width(20)))
            .unwrap();
        assert_eq!(wide.core_settings, cold.core_settings);
        assert_eq!(wide.test_time, cold.test_time);
        // And now fully covered: a third run is all hits.
        let (_, s3) = planner
            .plan_with_stats(&soc, &fast(PlanRequest::tam_width(20)), &control)
            .unwrap();
        assert_eq!(s3.profile_hits, soc.core_count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_rebuilds_only_that_core() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(16));
        let dir = cache_dir("corrupt");
        let control = cached_control(&dir);
        let planner = Planner::per_core_tdc();
        let baseline = planner.plan_with(&soc, &req, &control).unwrap();

        // Corrupt exactly one core's entry (flip a digit in a data row; the
        // body checksum catches it) and snapshot the others.
        let entries = profile_cache_entries(&dir);
        assert_eq!(entries.len(), soc.core_count());
        let victim = &entries[0];
        let text = std::fs::read_to_string(victim).unwrap();
        let flipped: String = text
            .lines()
            .map(|l| {
                if l.starts_with('#') || l.starts_with("w,") || l.is_empty() {
                    l.to_string()
                } else {
                    let mut s = l.to_string();
                    let last = s.pop().unwrap();
                    s.push(if last == '9' { '8' } else { '9' });
                    s
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(victim, flipped).unwrap();
        let untouched: Vec<(std::path::PathBuf, String)> = entries[1..]
            .iter()
            .map(|p| (p.clone(), std::fs::read_to_string(p).unwrap()))
            .collect();

        let (replan, stats) = planner.plan_with_stats(&soc, &req, &control).unwrap();
        assert_eq!(stats.profile_misses, 1, "only the corrupt core rebuilds");
        assert_eq!(stats.profile_hits, soc.core_count() - 1);
        assert_eq!(replan.core_settings, baseline.core_settings);
        // The corrupt file was quarantined into its own shard, not
        // silently re-read — and no other shard quarantined anything.
        let quarantined = quarantined_profiles(&dir);
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].parent().unwrap().parent(), victim.parent());
        // Every other entry is byte-identical (no gratuitous rewrites).
        for (p, before) in untouched {
            assert_eq!(std::fs::read_to_string(&p).unwrap(), before, "{p:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_entries_land_in_their_stamp_shard() {
        let soc = industrial_soc();
        let dir = cache_dir("shards");
        Planner::per_core_tdc()
            .plan_with(
                &soc,
                &fast(PlanRequest::tam_width(16)),
                &cached_control(&dir),
            )
            .unwrap();
        let entries = profile_cache_entries(&dir);
        assert_eq!(entries.len(), soc.core_count());
        for path in &entries {
            // File name carries the 16-hex-digit stamp; its top nibble
            // must match the shard directory the file lives in.
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let stamp_hex = name
                .split('-')
                .find(|f| f.len() == 16 && u64::from_str_radix(f, 16).is_ok())
                .expect("stamp field in cache file name");
            let stamp = u64::from_str_radix(stamp_hex, 16).unwrap();
            let shard = path
                .parent()
                .unwrap()
                .file_name()
                .unwrap()
                .to_string_lossy();
            assert_eq!(*shard, format!("shard-{:x}", stamp >> 60), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A minimal single-entry profile for direct cache-write tests.
    fn tiny_profile(name: &str, salt: u64) -> CoreProfile {
        CoreProfile::from_entries(
            name,
            vec![selenc::ProfileEntry {
                tam_width: 3,
                chains: 4,
                test_time: 1000 + salt,
                volume_bits: 500 + salt,
            }],
        )
    }

    #[test]
    fn shard_caps_evict_oldest_and_report_counts() {
        let dir = cache_dir("caps");
        // Whole-cache cap of 2×CACHE_SHARDS files → 2 per shard. All
        // writes share stamp high-nibble 0x3, so they contend in one shard.
        let cache = ProfileCacheConfig::new(&dir, "t")
            .with_limits(robust::CacheLimits::new(2 * CACHE_SHARDS, usize::MAX));
        let config = DecisionConfig::default();
        let mut evicted = 0;
        for i in 0..5u64 {
            let profile = tiny_profile(&format!("core{i}"), i);
            evicted += write_cached_profile(&cache, &profile, (0x3 << 60) | i, 3, &config);
        }
        assert_eq!(evicted, 3, "writes 3..5 each evict the oldest");
        let entries = profile_cache_entries(&dir);
        assert_eq!(entries.len(), 2);
        // The survivors are the two newest writes (journal write order).
        for (path, expect) in entries.iter().zip(["core3", "core4"]) {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.contains(expect), "{name} should be {expect}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// N concurrent writers hammering one cache root: every entry
        /// must read back intact (atomic renames — no torn files, no
        /// quarantines) and every shard must hold its scaled cap.
        #[test]
        fn concurrent_writers_never_tear_the_sharded_cache(
            threads in 2usize..5,
            per_thread in 1usize..9,
            cap in 1usize..4,
            salt in proptest::prelude::any::<u64>(),
        ) {
            let dir = std::env::temp_dir().join(format!(
                "tdcsoc-plancache-hammer-{threads}-{per_thread}-{cap}-{salt:x}"
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let cache = ProfileCacheConfig::new(&dir, "t")
                .with_limits(robust::CacheLimits::new(cap * CACHE_SHARDS, usize::MAX));
            let config = DecisionConfig::default();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let (cache, config) = (&cache, &config);
                    scope.spawn(move || {
                        for i in 0..per_thread {
                            // Mix the salt into the stamp so runs spread
                            // differently across shards case to case.
                            let stamp = salt
                                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                .wrapping_add((t * per_thread + i) as u64);
                            let profile =
                                tiny_profile(&format!("c{t}x{i}"), stamp & 0xff);
                            write_cached_profile(cache, &profile, stamp, 3, config);
                        }
                    });
                }
            });
            // Concurrent enforcement may transiently overshoot a cap
            // (a writer can rename after another's directory scan); one
            // quiescent enforcement pass per shard restores it, exactly
            // as the next writer in that shard would.
            if let Ok(shards) = std::fs::read_dir(&dir) {
                for shard in shards.flatten() {
                    enforce_disk_cache_caps(&cache, &shard.path().join("sweep"));
                }
            }
            // No temp droppings, no quarantines, every survivor parses.
            proptest::prop_assert!(quarantined_profiles(&dir).is_empty());
            let mut per_shard: std::collections::BTreeMap<std::path::PathBuf, usize> =
                std::collections::BTreeMap::new();
            for path in profile_cache_entries(&dir) {
                proptest::prop_assert!(
                    !path.to_string_lossy().ends_with(".tmp"),
                    "staging file leaked: {path:?}"
                );
                let csv = std::fs::read_to_string(&path).unwrap();
                let covered = csv.lines().next().and_then(parse_cover_line);
                proptest::prop_assert_eq!(covered, Some(3), "torn entry {:?}", &path);
                let body = csv.split_once('\n').map_or("", |(_, rest)| rest);
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let core = name.split('-').nth(1).unwrap().to_string();
                proptest::prop_assert!(
                    CoreProfile::from_csv_checked(&core, body).is_ok(),
                    "body checksum failed for {:?}",
                    &path
                );
                *per_shard.entry(path.parent().unwrap().to_path_buf()).or_default() += 1;
            }
            for (shard, count) in per_shard {
                proptest::prop_assert!(
                    count <= cap,
                    "shard {shard:?} holds {count} > cap {cap}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn plans_are_stream_verified_by_default() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(24));
        let (plan, stats) = Planner::per_core_tdc()
            .plan_with_stats(&soc, &req, &PlanControl::default())
            .unwrap();
        assert_eq!(stats.streams_verified, plan.compressed_core_count());
        assert!(stats.streams_verified > 0, "industrial cores compress");
        assert!(stats.stream_words > 0);
        // Opting out skips the replay but changes nothing else.
        let (same, none) = Planner::per_core_tdc()
            .plan_with_stats(
                &soc,
                &req,
                &PlanControl::default().without_stream_verification(),
            )
            .unwrap();
        assert_eq!(none.streams_verified, 0);
        assert_eq!(none.stream_words, 0);
        assert_eq!(same.core_settings, plan.core_settings);
    }

    #[test]
    fn stream_verification_error_displays_core_name() {
        let err = PlanError::StreamVerification {
            core: "ckt-9".into(),
            error: selenc::StreamError::SliceCountMismatch {
                expected: 4,
                decoded: 3,
            },
        };
        let s = err.to_string();
        assert!(s.contains("ckt-9"), "{s}");
        assert!(s.contains("verification"), "{s}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn checkpoint_is_written_and_resume_seeds_the_search() {
        let soc = industrial_soc();
        let req = fast(PlanRequest::tam_width(24));
        let dir = std::env::temp_dir().join("tdcsoc-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incumbent.plan");
        let _ = std::fs::remove_file(&path);

        // A comfortable deadline: runs to completion, checkpointing along
        // the way.
        let control = PlanControl::with_deadline(Duration::from_secs(120)).checkpoint_to(&path);
        let full = Planner::per_core_tdc()
            .plan_with(&soc, &req, &control)
            .unwrap();
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        let checkpoint = crate::planfile::parse_plan(&text).unwrap();
        assert_eq!(checkpoint.test_time, full.test_time);

        // Resuming from the checkpoint (same request, fresh budget): the
        // resumed incumbent seeds the search, so the plan can never be
        // worse than the checkpoint.
        let control = PlanControl {
            deadline: robust::Deadline::within(Duration::from_secs(120)),
            resume: Some(checkpoint.clone()),
            ..PlanControl::default()
        };
        let resumed = Planner::per_core_tdc()
            .plan_with(&soc, &req, &control)
            .unwrap();
        assert!(resumed.test_time <= checkpoint.test_time);

        // A checkpoint from an incompatible budget is discarded, not
        // trusted.
        let control = PlanControl {
            deadline: robust::Deadline::within(Duration::from_secs(120)),
            resume: Some(checkpoint),
            ..PlanControl::default()
        };
        let other = Planner::per_core_tdc()
            .plan_with(&soc, &fast(PlanRequest::tam_width(16)), &control)
            .unwrap();
        assert_eq!(other.schedule.total_width(), 16);
        let _ = std::fs::remove_file(&path);
    }
}
