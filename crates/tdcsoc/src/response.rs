//! Response-side planning: sizing the optional output compactor of the
//! paper's Fig. 1.
//!
//! The planning core of the paper handles stimuli only ("the handling of
//! test responses is beyond the scope of this work"), but a deployable
//! flow still has to *budget* the response side. This module sizes one
//! MISR per core — wide enough to absorb the core's wrapper chains in
//! parallel and long enough to meet an aliasing-probability target — and
//! reports the hardware bill alongside the stimulus plan.

use std::fmt;

use lfsr::Misr;
use soc_model::Soc;
use wrapper::{best_design_up_to, design_wrapper};

use crate::planner::Plan;

/// One core's response-compactor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactorSetting {
    /// The core's name.
    pub name: String,
    /// Parallel inputs (the core's wrapper chain count on the unload
    /// side).
    pub inputs: u32,
    /// MISR register length in cells.
    pub misr_len: u32,
    /// Aliasing probability bound `2^-len`.
    pub aliasing: f64,
}

/// A response-compaction plan for a whole SOC.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponsePlan {
    /// Per-core compactor settings, in core order.
    pub compactors: Vec<CompactorSetting>,
}

impl ResponsePlan {
    /// Total MISR flip-flops across the SOC.
    pub fn total_flip_flops(&self) -> u64 {
        self.compactors.iter().map(|c| u64::from(c.misr_len)).sum()
    }

    /// The worst per-core aliasing bound.
    pub fn worst_aliasing(&self) -> f64 {
        self.compactors
            .iter()
            .map(|c| c.aliasing)
            .fold(0.0, f64::max)
    }

    /// Builds a ready-to-use [`Misr`] model for core index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn misr_for(&self, i: usize) -> Misr {
        let c = &self.compactors[i];
        Misr::new(c.misr_len as usize, c.inputs as usize)
    }
}

impl fmt::Display for ResponsePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "response compaction: {} MISRs, {} FFs total, worst aliasing {:.2e}",
            self.compactors.len(),
            self.total_flip_flops(),
            self.worst_aliasing()
        )?;
        for c in &self.compactors {
            writeln!(
                f,
                "  {:>12}: MISR-{}×{} (aliasing {:.2e})",
                c.name, c.misr_len, c.inputs, c.aliasing
            )?;
        }
        Ok(())
    }
}

/// Sizes a MISR per core for `plan`, targeting an aliasing probability of
/// at most `max_aliasing` per core.
///
/// Each MISR must have at least as many cells as the core has wrapper
/// chains (parallel injection) and at least `ceil(log2(1/max_aliasing))`
/// cells for the aliasing bound.
///
/// # Panics
///
/// Panics if `max_aliasing` is not in `(0, 1)`.
pub fn plan_response_compaction(soc: &Soc, plan: &Plan, max_aliasing: f64) -> ResponsePlan {
    assert!(
        max_aliasing > 0.0 && max_aliasing < 1.0,
        "aliasing target {max_aliasing} outside (0, 1)"
    );
    let min_len = (-max_aliasing.log2()).ceil() as u32;
    let compactors = plan
        .core_settings
        .iter()
        .map(|s| {
            let core = soc.core(s.core).expect("plan matches the SOC");
            let chains = match s.decompressor {
                Some((_, m)) => design_wrapper(core, m).chain_count(),
                None => best_design_up_to(core, s.tam_width).0.chain_count(),
            };
            let misr_len = min_len.max(chains);
            CompactorSetting {
                name: s.name.clone(),
                inputs: chains,
                misr_len,
                aliasing: (0.5f64).powi(misr_len as i32),
            }
        })
        .collect();
    ResponsePlan { compactors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionConfig;
    use crate::planner::{PlanRequest, Planner};
    use soc_model::benchmarks::Design;

    fn setup() -> (Soc, Plan) {
        let soc = Design::D695.build_with_cubes(4);
        let plan = Planner::per_core_tdc()
            .plan(
                &soc,
                &PlanRequest::tam_width(16).with_decisions(DecisionConfig {
                    pattern_sample: Some(8),
                    m_candidates: 8,
                }),
            )
            .unwrap();
        (soc, plan)
    }

    #[test]
    fn every_core_gets_a_compactor() {
        let (soc, plan) = setup();
        let rp = plan_response_compaction(&soc, &plan, 1e-6);
        assert_eq!(rp.compactors.len(), soc.core_count());
        for c in &rp.compactors {
            assert!(c.misr_len >= 20, "1e-6 needs ≥ 20 cells: {c:?}");
            assert!(c.misr_len >= c.inputs);
            assert!(c.aliasing <= 1e-6 + f64::EPSILON);
        }
        assert!(rp.worst_aliasing() <= 1e-6);
    }

    #[test]
    fn misr_models_are_constructible_and_usable() {
        let (soc, plan) = setup();
        let rp = plan_response_compaction(&soc, &plan, 1e-4);
        for i in 0..rp.compactors.len() {
            let mut misr = rp.misr_for(i);
            let slice = vec![true; misr.inputs()];
            misr.absorb(&slice);
            assert_eq!(misr.cycles(), 1);
        }
    }

    #[test]
    fn tighter_targets_cost_more_hardware() {
        let (soc, plan) = setup();
        let loose = plan_response_compaction(&soc, &plan, 1e-3);
        let tight = plan_response_compaction(&soc, &plan, 1e-12);
        assert!(tight.total_flip_flops() > loose.total_flip_flops());
    }

    #[test]
    fn display_reports_totals() {
        let (soc, plan) = setup();
        let rp = plan_response_compaction(&soc, &plan, 1e-6);
        let s = rp.to_string();
        assert!(s.contains("MISRs"));
        assert!(s.contains("aliasing"));
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn invalid_target_panics() {
        let (soc, plan) = setup();
        plan_response_compaction(&soc, &plan, 1.5);
    }
}
