//! Test-data truncation under ATE memory constraints (extension, after
//! E. Larsson & S. Edbom, "Test data truncation for test quality
//! maximisation under ATE memory depth constraint").
//!
//! When even the compressed test does not fit the tester's vector memory,
//! the only remaining lever is dropping patterns. ATPG orders patterns by
//! fault contribution, so dropping from the *tail* of the longest tests
//! loses the least quality; this module searches the largest uniform
//! keep-fraction whose plan fits the tester.

use std::fmt;

use soc_model::Soc;

use crate::ate::AteSpec;
use crate::planner::{Plan, PlanError, PlanRequest, Planner};

/// Outcome of fitting a test to the tester by truncation.
#[derive(Debug, Clone, PartialEq)]
pub struct Truncation {
    /// The plan for the truncated SOC (fits `spec`).
    pub plan: Plan,
    /// The truncated SOC itself (use it for image export etc.).
    pub soc: Soc,
    /// Patterns kept per core: `(name, kept, original)`.
    pub kept: Vec<(String, u32, u32)>,
}

impl Truncation {
    /// Overall fraction of patterns kept.
    pub fn kept_fraction(&self) -> f64 {
        let kept: u64 = self.kept.iter().map(|(_, k, _)| u64::from(*k)).sum();
        let orig: u64 = self.kept.iter().map(|(_, _, o)| u64::from(*o)).sum();
        if orig == 0 {
            1.0
        } else {
            kept as f64 / orig as f64
        }
    }

    /// Returns `true` when nothing had to be dropped.
    pub fn is_complete(&self) -> bool {
        self.kept.iter().all(|(_, k, o)| k == o)
    }

    /// Test-quality proxy in `[0, 1]`: the fraction of care bits still
    /// applied, using the original SOC's cubes. ATPG orders patterns by
    /// fault contribution (early patterns are denser), so this proxy
    /// decays *slower* than the kept-pattern fraction — dropping the tail
    /// costs little.
    ///
    /// # Panics
    ///
    /// Panics if `original` does not match the truncation's SOC shape or
    /// lacks test sets.
    pub fn quality_proxy(&self, original: &Soc) -> f64 {
        let mut kept_bits = 0u64;
        let mut total_bits = 0u64;
        for (orig, (_, keep, _)) in original.cores().iter().zip(&self.kept) {
            let ts = orig.test_set().expect("original cores carry cubes");
            for (i, cube) in ts.iter().enumerate() {
                let bits = cube.count_cares() as u64;
                total_bits += bits;
                if (i as u32) < *keep {
                    kept_bits += bits;
                }
            }
        }
        if total_bits == 0 {
            1.0
        } else {
            kept_bits as f64 / total_bits as f64
        }
    }
}

impl fmt::Display for Truncation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "truncation: kept {:.1}% of patterns, test time {} cycles",
            100.0 * self.kept_fraction(),
            self.plan.test_time
        )?;
        for (name, kept, orig) in &self.kept {
            if kept != orig {
                writeln!(f, "  {name}: {kept}/{orig} patterns")?;
            }
        }
        Ok(())
    }
}

/// Error produced by [`truncate_to_fit`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TruncateError {
    /// Planning failed for a reason unrelated to memory.
    Plan(PlanError),
    /// Even a single pattern per core does not fit the tester.
    CannotFit {
        /// Vector depth of the smallest plan tried.
        smallest_depth: u64,
        /// The tester's memory depth.
        memory_depth: u64,
    },
}

impl fmt::Display for TruncateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruncateError::Plan(e) => write!(f, "planning failed: {e}"),
            TruncateError::CannotFit {
                smallest_depth,
                memory_depth,
            } => write!(
                f,
                "even one pattern per core needs {smallest_depth} vectors; the tester has {memory_depth}"
            ),
        }
    }
}

impl std::error::Error for TruncateError {}

impl From<PlanError> for TruncateError {
    fn from(e: PlanError) -> Self {
        TruncateError::Plan(e)
    }
}

fn truncated_soc(soc: &Soc, keep_permille: u32) -> Soc {
    let cores = soc
        .cores()
        .iter()
        .map(|c| {
            let keep =
                ((u64::from(c.pattern_count()) * u64::from(keep_permille)) / 1000).max(1) as u32;
            c.with_truncated_patterns(keep)
        })
        .collect();
    Soc::new(soc.name(), cores)
}

/// Finds (by bisection on a uniform keep-fraction) the largest truncation
/// of `soc` whose plan under `planner`/`request` fits `spec`, in at most
/// 11 planning runs.
///
/// # Errors
///
/// * [`TruncateError::Plan`] — the planner itself failed.
/// * [`TruncateError::CannotFit`] — even one pattern per core exceeds the
///   tester's memory.
pub fn truncate_to_fit(
    soc: &Soc,
    planner: &Planner,
    request: &PlanRequest,
    spec: &AteSpec,
) -> Result<Truncation, TruncateError> {
    let build = |permille: u32| -> Result<(Soc, Plan, bool), TruncateError> {
        let t = truncated_soc(soc, permille);
        let plan = planner.plan(&t, request)?;
        let fits = spec.fit(&plan).fits;
        Ok((t, plan, fits))
    };

    // Fast path: everything fits.
    let (full_soc, full_plan, fits) = build(1000)?;
    if fits {
        return Ok(make_result(soc, full_soc, full_plan));
    }
    // Feasibility floor: one pattern per core.
    let (_, min_plan, min_fits) = build(0)?;
    if !min_fits {
        return Err(TruncateError::CannotFit {
            smallest_depth: spec.fit(&min_plan).required_depth,
            memory_depth: spec.memory_depth,
        });
    }

    // Bisect on permille.
    let mut lo = 0u32; // fits
    let mut hi = 1000u32; // does not fit
    let mut best: Option<(Soc, Plan)> = None;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let (t, plan, fits) = build(mid)?;
        if fits {
            lo = mid;
            best = Some((t, plan));
        } else {
            hi = mid;
        }
    }
    let (t, plan) = match best {
        Some(b) => b,
        None => {
            let (t, plan, _) = build(lo)?;
            (t, plan)
        }
    };
    Ok(make_result(soc, t, plan))
}

fn make_result(original: &Soc, truncated: Soc, plan: Plan) -> Truncation {
    let kept = original
        .cores()
        .iter()
        .zip(truncated.cores())
        .map(|(o, t)| (o.name().to_string(), t.pattern_count(), o.pattern_count()))
        .collect();
    Truncation {
        plan,
        soc: truncated,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decisions::DecisionConfig;
    use soc_model::benchmarks::Design;

    fn setup() -> (Soc, PlanRequest) {
        let soc = Design::D695.build_with_cubes(9);
        let req = PlanRequest::tam_width(16).with_decisions(DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 8,
        });
        (soc, req)
    }

    fn tester(depth: u64) -> AteSpec {
        AteSpec {
            channels: 64,
            memory_depth: depth,
            clock_hz: 50_000_000,
        }
    }

    #[test]
    fn roomy_tester_keeps_everything() {
        let (soc, req) = setup();
        let t = truncate_to_fit(&soc, &Planner::no_tdc(), &req, &tester(1 << 30)).unwrap();
        assert!(t.is_complete());
        assert!((t.kept_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_tester_drops_patterns_but_fits() {
        let (soc, req) = setup();
        let full = Planner::no_tdc().plan(&soc, &req).unwrap();
        let spec = tester(full.test_time / 2);
        let t = truncate_to_fit(&soc, &Planner::no_tdc(), &req, &spec).unwrap();
        assert!(!t.is_complete());
        assert!(t.kept_fraction() > 0.2, "{}", t.kept_fraction());
        assert!(spec.fit(&t.plan).fits);
        // At least one pattern survives everywhere.
        assert!(t.kept.iter().all(|(_, k, _)| *k >= 1));
    }

    #[test]
    fn compression_preserves_more_patterns() {
        // Same memory budget: the TDC plan needs fewer vectors, so it keeps
        // more (often all) patterns.
        let soc = Design::System1.build_with_cubes(5);
        let req = PlanRequest::tam_width(24).with_decisions(DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 8,
        });
        let raw_full = Planner::no_tdc().plan(&soc, &req).unwrap();
        let spec = tester(raw_full.test_time / 3);
        let raw = truncate_to_fit(&soc, &Planner::no_tdc(), &req, &spec).unwrap();
        let tdc = truncate_to_fit(&soc, &Planner::per_core_tdc(), &req, &spec).unwrap();
        assert!(
            tdc.kept_fraction() > raw.kept_fraction(),
            "TDC {} vs raw {}",
            tdc.kept_fraction(),
            raw.kept_fraction()
        );
    }

    #[test]
    fn quality_proxy_beats_kept_fraction_under_decay() {
        // With decaying pattern density the early (kept) patterns carry
        // disproportionately many care bits.
        use soc_model::{Core, CubeSynthesis, Soc};
        let mut core = Core::builder("q")
            .inputs(2000)
            .pattern_count(40)
            .care_density(0.3)
            .build()
            .unwrap();
        let cubes = CubeSynthesis::new(0.3)
            .density_decay(0.85)
            .synthesize(&core, 3);
        core.attach_test_set(cubes).unwrap();
        let soc = Soc::new("q", vec![core]);
        let req = PlanRequest::tam_width(8).with_decisions(DecisionConfig {
            pattern_sample: Some(8),
            m_candidates: 4,
        });
        let full = Planner::no_tdc().plan(&soc, &req).unwrap();
        let t =
            truncate_to_fit(&soc, &Planner::no_tdc(), &req, &tester(full.test_time / 2)).unwrap();
        assert!(!t.is_complete());
        let q = t.quality_proxy(&soc);
        assert!(
            q > t.kept_fraction() + 0.05,
            "quality {q:.3} vs kept {:.3}",
            t.kept_fraction()
        );
        assert!(q <= 1.0);
    }

    #[test]
    fn impossible_budgets_are_reported() {
        let (soc, req) = setup();
        let err = truncate_to_fit(&soc, &Planner::no_tdc(), &req, &tester(4)).unwrap_err();
        assert!(matches!(err, TruncateError::CannotFit { .. }));
        assert!(err.to_string().contains("vectors"));
    }

    #[test]
    fn display_lists_truncated_cores() {
        let (soc, req) = setup();
        let full = Planner::no_tdc().plan(&soc, &req).unwrap();
        let t = truncate_to_fit(
            &soc,
            &Planner::no_tdc(),
            &req,
            &tester(full.test_time * 2 / 3),
        )
        .unwrap();
        let s = t.to_string();
        assert!(s.contains("kept"));
        assert!(s.contains('/'));
    }
}
