//! Tester-image export: turn a [`Plan`] into the actual per-TAM bit
//! streams the ATE would apply, and verify them bit-exactly.
//!
//! This is the strongest end-to-end check the repository has: the exported
//! image is fed back through the cycle-accurate decompressor models and
//! every care bit of every core's cube set must be honored at the right
//! wrapper chain and scan depth.
//!
//! Supported operating points: raw wrapper access and selective-encoding
//! decompressors (per core, per TAM, fixed width). LFSR-reseeding plans
//! are rejected — their seeds are not retained in the plan.

use std::fmt;

use selenc::{encode_cube, Codeword, Decompressor, Encoder, SliceCode};
use soc_model::Soc;
use wrapper::{best_design_up_to, design_wrapper, WrapperDesign};

use crate::decisions::Technique;
use crate::planner::{CoreSetting, Plan};

/// One TAM's vector memory: a `width`-bit word per clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamImage {
    width: u32,
    words: Vec<u64>,
}

/// Upper bound on a single TAM image's depth. Real plans in this
/// repository run five orders of magnitude below it; anything larger is a
/// corrupted plan trying to make the exporter allocate unbounded memory.
const MAX_IMAGE_CYCLES: u64 = 1 << 28;

impl TamImage {
    fn new(width: u32, cycles: u64) -> Result<Self, ImageError> {
        if !(1..=64).contains(&width) {
            return Err(ImageError::UnsupportedWidth { width });
        }
        if cycles > MAX_IMAGE_CYCLES {
            return Err(ImageError::ImageTooLarge {
                cycles,
                max: MAX_IMAGE_CYCLES,
            });
        }
        Ok(TamImage {
            width,
            words: vec![0; cycles as usize],
        })
    }

    /// TAM width in wires.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of clock cycles stored.
    pub fn cycles(&self) -> u64 {
        self.words.len() as u64
    }

    /// The word applied at `cycle` (low `width` bits valid).
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range. Untrusted reads inside
    /// [`verify_image`] go through its bounds-checked `read` closure; this
    /// accessor is for callers iterating `0..cycles()`.
    pub fn word(&self, cycle: u64) -> u64 {
        // soclint: allow(unchecked-index) -- documented panic on a trusted in-range accessor; untrusted reads are bounds-checked at the call site
        self.words[cycle as usize]
    }

    /// The bit applied on `wire` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` or `wire` is out of range (same contract as
    /// [`word`](Self::word)).
    pub fn bit(&self, cycle: u64, wire: u32) -> bool {
        assert!(wire < self.width, "wire {wire} out of range");
        // soclint: allow(unchecked-index) -- documented panic on a trusted in-range accessor; untrusted reads are bounds-checked at the call site
        self.words[cycle as usize] >> wire & 1 == 1
    }

    /// Bounds-checked write: a plan whose slots disagree with its declared
    /// makespan must surface as a typed error, not an exporter panic.
    fn set_word(&mut self, cycle: u64, word: u64) -> Result<(), ImageError> {
        debug_assert!(word < (1u128 << self.width) as u64 || self.width == 64);
        match self.words.get_mut(cycle as usize) {
            Some(slot) => {
                *slot = word;
                Ok(())
            }
            None => Err(ImageError::StreamOutOfBounds {
                cycle,
                cycles: self.words.len() as u64,
            }),
        }
    }

    /// Stored volume in bits (`width × cycles`).
    pub fn volume_bits(&self) -> u64 {
        u64::from(self.width) * self.cycles()
    }
}

/// A complete tester image for one plan: one [`TamImage`] per TAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TesterImage {
    tams: Vec<TamImage>,
}

impl TesterImage {
    /// Per-TAM images, in TAM order.
    pub fn tams(&self) -> &[TamImage] {
        &self.tams
    }

    /// Total stored bits across all TAMs.
    pub fn volume_bits(&self) -> u64 {
        self.tams.iter().map(TamImage::volume_bits).sum()
    }
}

/// Error produced by [`export_image`] / [`verify_image`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// The plan uses a technique whose streams the plan does not retain
    /// (LFSR reseeding or FDR).
    UnsupportedMode,
    /// A core's exact compressed stream does not fit its scheduled slot
    /// (the plan was built with sampled estimation; re-plan with
    /// `PlanRequest::exact`).
    SlotOverflow {
        /// The offending core's name.
        core: String,
        /// Cycles available in the schedule slot.
        slot: u64,
        /// Cycles the exact stream needs.
        needed: u64,
    },
    /// A core has no test set attached.
    MissingTestSet {
        /// The offending core's name.
        core: String,
    },
    /// Verification found a care bit the applied stream does not honor.
    CareBitViolated {
        /// The offending core's name.
        core: String,
        /// Pattern index.
        pattern: usize,
        /// Scan-in cycle within the pattern.
        depth: u64,
        /// Wrapper chain index.
        chain: usize,
    },
    /// Verification could not decode the embedded codeword stream.
    MalformedStream {
        /// The offending core's name.
        core: String,
        /// The decoder's complaint.
        detail: String,
    },
    /// The plan references a core the SOC does not have.
    UnknownCore {
        /// The referenced core id.
        core: usize,
        /// Cores in the SOC.
        cores: usize,
    },
    /// A TAM width outside the exporter's 1..=64 word size.
    UnsupportedWidth {
        /// The offending width.
        width: u32,
    },
    /// The plan's makespan exceeds the exporter's allocation cap — a
    /// corrupted plan, not a real schedule.
    ImageTooLarge {
        /// The requested depth in cycles.
        cycles: u64,
        /// The cap.
        max: u64,
    },
    /// A core's stream references a TAM the plan's schedule does not have.
    UnknownTam {
        /// The offending core's name.
        core: String,
        /// The referenced TAM index.
        tam: usize,
        /// TAMs in the schedule.
        tams: usize,
    },
    /// A core's slot writes past the image depth the plan declared — the
    /// plan's start/time fields are inconsistent with its makespan.
    StreamOutOfBounds {
        /// The out-of-range cycle.
        cycle: u64,
        /// Cycles the image actually has.
        cycles: u64,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::UnsupportedMode => {
                write!(
                    f,
                    "tester-image export only supports raw and selective-encoding plans"
                )
            }
            ImageError::SlotOverflow { core, slot, needed } => write!(
                f,
                "core {core:?}: exact stream needs {needed} cycles but the slot has {slot} \
                 (re-plan with exact evaluation)"
            ),
            ImageError::MissingTestSet { core } => {
                write!(f, "core {core:?} has no test set attached")
            }
            ImageError::CareBitViolated {
                core,
                pattern,
                depth,
                chain,
            } => write!(
                f,
                "core {core:?}: pattern {pattern} care bit violated at depth {depth}, chain {chain}"
            ),
            ImageError::MalformedStream { core, detail } => {
                write!(f, "core {core:?}: malformed codeword stream: {detail}")
            }
            ImageError::UnknownCore { core, cores } => {
                write!(f, "plan references core {core} but the SOC has {cores}")
            }
            ImageError::UnsupportedWidth { width } => {
                write!(f, "TAM width {width} outside the supported 1..=64 range")
            }
            ImageError::ImageTooLarge { cycles, max } => {
                write!(f, "image depth {cycles} cycles exceeds the {max}-cycle cap")
            }
            ImageError::UnknownTam { core, tam, tams } => {
                write!(
                    f,
                    "core {core:?} references TAM {tam} but the plan has {tams}"
                )
            }
            ImageError::StreamOutOfBounds { cycle, cycles } => {
                write!(
                    f,
                    "stream writes cycle {cycle} but the image ends at {cycles} \
                     (plan slots disagree with its makespan)"
                )
            }
        }
    }
}

impl std::error::Error for ImageError {}

/// The wrapper design and shift-stream layout of one scheduled core.
struct CoreLayout {
    design: WrapperDesign,
    /// `Some(code)` when a decompressor is in front of the wrapper.
    code: Option<SliceCode>,
    /// Shift cycles the stream occupies from the slot start.
    shift_cycles: u64,
}

/// Resolves a plan's core reference against the SOC, as a typed error
/// (plans can come from untrusted files; a dangling id must not panic).
fn core_of<'a>(soc: &'a Soc, setting: &CoreSetting) -> Result<&'a soc_model::Core, ImageError> {
    soc.core(setting.core).ok_or(ImageError::UnknownCore {
        core: setting.core.0,
        cores: soc.core_count(),
    })
}

fn layout_for(soc: &Soc, setting: &CoreSetting) -> Result<CoreLayout, ImageError> {
    let core = core_of(soc, setting)?;
    let test_set = core.test_set().ok_or_else(|| ImageError::MissingTestSet {
        core: setting.name.clone(),
    })?;
    match setting.decompressor {
        Some((_, m)) => {
            // soclint: allow(panic-reach) -- m >= 1 enforced at the planfile trust boundary (decomp rejects 0)
            let design = design_wrapper(core, m);
            let code = SliceCode::for_chains(design.chain_count());
            let enc = Encoder::new(code);
            let shift_cycles: u64 = test_set
                .iter()
                // soclint: allow(panic-reach) -- encoder invariant: encode_slice always emits a header codeword
                .map(|cube| encode_cube(&enc, &design, cube).len() as u64)
                .sum();
            Ok(CoreLayout {
                design,
                code: Some(code),
                shift_cycles,
            })
        }
        None => {
            // soclint: allow(panic-reach) -- cap is clamped to >= 1, so the pareto sweep always yields a design
            let (design, _) = best_design_up_to(core, setting.tam_width);
            let shift_cycles = design.scan_in_length() * u64::from(core.pattern_count());
            Ok(CoreLayout {
                design,
                code: None,
                shift_cycles,
            })
        }
    }
}

/// Exports the exact vector streams of `plan` for `soc`.
///
/// # Errors
///
/// See [`ImageError`]; most commonly [`ImageError::SlotOverflow`] when the
/// plan was built with sampled (inexact) evaluation.
pub fn export_image(soc: &Soc, plan: &Plan) -> Result<TesterImage, ImageError> {
    if plan
        .core_settings
        .iter()
        .any(|s| !matches!(s.technique, Technique::Raw | Technique::SelectiveEncoding))
    {
        return Err(ImageError::UnsupportedMode);
    }
    let makespan = plan.test_time;
    let mut tams: Vec<TamImage> = plan
        .schedule
        .tam_widths()
        .iter()
        .map(|&w| TamImage::new(w, makespan))
        .collect::<Result<_, _>>()?;

    for setting in &plan.core_settings {
        let core = core_of(soc, setting)?;
        let test_set = core.test_set().ok_or_else(|| ImageError::MissingTestSet {
            core: setting.name.clone(),
        })?;
        let layout = layout_for(soc, setting)?;
        if layout.shift_cycles > setting.test_time {
            return Err(ImageError::SlotOverflow {
                core: setting.name.clone(),
                slot: setting.test_time,
                needed: layout.shift_cycles,
            });
        }
        let tam_count = tams.len();
        let image = tams
            .get_mut(setting.tam)
            .ok_or_else(|| ImageError::UnknownTam {
                core: setting.name.clone(),
                tam: setting.tam,
                tams: tam_count,
            })?;
        let mut cycle = setting.start;
        match layout.code {
            Some(code) => {
                let enc = Encoder::new(code);
                for cube in test_set.iter() {
                    // soclint: allow(panic-reach) -- encoder invariant: encode_slice always emits a header codeword
                    for cw in encode_cube(&enc, &layout.design, cube) {
                        image.set_word(cycle, cw.pack(code))?;
                        cycle += 1;
                    }
                }
            }
            None => {
                for cube in test_set.iter() {
                    for depth in 0..layout.design.scan_in_length() {
                        let mut word = 0u64;
                        for (k, chain) in layout.design.chains().iter().enumerate() {
                            if let Some(pos) = chain.position_at(depth) {
                                if let Some(true) = cube.get(pos as usize).value() {
                                    word |= 1 << k;
                                }
                            }
                        }
                        image.set_word(cycle, word)?;
                        cycle += 1;
                    }
                }
            }
        }
    }
    Ok(TesterImage { tams })
}

/// Verifies `image` against `soc` and `plan`: replays each core's slot
/// through the decompressor model (or directly, for raw cores) and checks
/// every care bit of every cube.
///
/// # Errors
///
/// The first violation found, as an [`ImageError`].
pub fn verify_image(image: &TesterImage, soc: &Soc, plan: &Plan) -> Result<(), ImageError> {
    for setting in &plan.core_settings {
        let core = core_of(soc, setting)?;
        let test_set = core.test_set().ok_or_else(|| ImageError::MissingTestSet {
            core: setting.name.clone(),
        })?;
        let layout = layout_for(soc, setting)?;
        let tam = image
            .tams()
            .get(setting.tam)
            .ok_or_else(|| ImageError::MalformedStream {
                core: setting.name.clone(),
                detail: format!("image has no TAM {}", setting.tam),
            })?;
        // A corrupted stream can fail to raise `last` flags and run off
        // the end of the image; bound every read.
        let read = |cycle: u64| -> Result<u64, ImageError> {
            if cycle < tam.cycles() {
                Ok(tam.word(cycle))
            } else {
                Err(ImageError::MalformedStream {
                    core: setting.name.clone(),
                    detail: format!("stream runs past the image end at cycle {cycle}"),
                })
            }
        };
        let mut cycle = setting.start;

        match layout.code {
            Some(code) => {
                let mut dec = Decompressor::new(code);
                for (pi, cube) in test_set.iter().enumerate() {
                    let mut depth = 0u64;
                    while depth < layout.design.scan_in_length() {
                        let cw = Codeword::unpack(
                            read(cycle)? & ((1u128 << code.tam_width()) - 1) as u64,
                            code,
                        );
                        cycle += 1;
                        let slice = dec.feed(cw).map_err(|e| ImageError::MalformedStream {
                            core: setting.name.clone(),
                            detail: e.to_string(),
                        })?;
                        if let Some(slice) = slice {
                            check_slice(&layout.design, cube, depth, &slice, setting, pi)?;
                            depth += 1;
                        }
                    }
                }
            }
            None => {
                for (pi, cube) in test_set.iter().enumerate() {
                    for depth in 0..layout.design.scan_in_length() {
                        let word = read(cycle)?;
                        cycle += 1;
                        for (k, chain) in layout.design.chains().iter().enumerate() {
                            if let Some(pos) = chain.position_at(depth) {
                                let applied = word >> k & 1 == 1;
                                if !cube.get(pos as usize).accepts(applied) {
                                    return Err(ImageError::CareBitViolated {
                                        core: setting.name.clone(),
                                        pattern: pi,
                                        depth,
                                        chain: k,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_slice(
    design: &WrapperDesign,
    cube: &soc_model::TritVec,
    depth: u64,
    slice: &[bool],
    setting: &CoreSetting,
    pattern: usize,
) -> Result<(), ImageError> {
    for (k, chain) in design.chains().iter().enumerate() {
        if let Some(pos) = chain.position_at(depth) {
            let applied = slice.get(k).ok_or_else(|| ImageError::MalformedStream {
                core: setting.name.clone(),
                detail: format!("decoded slice has {} chains, expected {k}+", slice.len()),
            })?;
            if !cube.get(pos as usize).accepts(*applied) {
                return Err(ImageError::CareBitViolated {
                    core: setting.name.clone(),
                    pattern,
                    depth,
                    chain: k,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanRequest, Planner};
    use soc_model::generator::synthesize_missing_test_sets;
    use soc_model::Core;

    fn small_soc() -> Soc {
        let mk = |name: &str, cells: u32, patterns: u32, density: f64| {
            Core::builder(name)
                .inputs(8)
                .outputs(8)
                .flexible_cells(cells, 64)
                .pattern_count(patterns)
                .care_density(density)
                .build()
                .unwrap()
        };
        let mut soc = Soc::new(
            "img",
            vec![
                mk("a", 300, 6, 0.05),
                mk("b", 500, 4, 0.1),
                mk("c", 200, 8, 0.4),
            ],
        );
        synthesize_missing_test_sets(&mut soc, 77);
        soc
    }

    #[test]
    fn exact_tdc_plan_exports_and_verifies() {
        let soc = small_soc();
        let plan = Planner::per_core_tdc()
            .plan(&soc, &PlanRequest::tam_width(12).exact())
            .unwrap();
        let image = export_image(&soc, &plan).unwrap();
        assert_eq!(image.tams().len(), plan.tam_count());
        verify_image(&image, &soc, &plan).unwrap();
        // Image volume is bounded by makespan × total width.
        assert_eq!(
            image.volume_bits(),
            plan.test_time * u64::from(plan.schedule.total_width())
        );
    }

    #[test]
    fn raw_plan_exports_and_verifies() {
        let soc = small_soc();
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(10))
            .unwrap();
        let image = export_image(&soc, &plan).unwrap();
        verify_image(&image, &soc, &plan).unwrap();
    }

    #[test]
    fn corrupted_image_is_caught() {
        let soc = small_soc();
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(10))
            .unwrap();
        let mut image = export_image(&soc, &plan).unwrap();
        // Flip every word during some core's shift window; with 5-40% care
        // density a violated care bit is guaranteed.
        let s = &plan.core_settings[2];
        let mask = (1u64 << image.tams[s.tam].width()) - 1;
        for cycle in s.start..s.start + s.test_time.min(200) {
            let w = image.tams[s.tam].word(cycle);
            image.tams[s.tam].set_word(cycle, !w & mask).unwrap();
        }
        let err = verify_image(&image, &soc, &plan).unwrap_err();
        assert!(matches!(err, ImageError::CareBitViolated { .. }), "{err}");
    }

    #[test]
    fn reseeding_plans_are_rejected() {
        let soc = small_soc();
        let plan = Planner::reseeding_tdc()
            .plan(&soc, &PlanRequest::tam_width(10))
            .unwrap();
        assert_eq!(export_image(&soc, &plan), Err(ImageError::UnsupportedMode));
    }

    #[test]
    fn error_messages_name_the_core() {
        let e = ImageError::SlotOverflow {
            core: "cpu".into(),
            slot: 10,
            needed: 12,
        };
        assert!(e.to_string().contains("cpu"));
        assert!(e.to_string().contains("12"));
    }
}
