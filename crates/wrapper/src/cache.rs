//! Memoized wrapper designs for one core.
//!
//! `Design_wrapper` is deterministic in `(core, m)`, and the planner asks
//! for the same designs over and over: every profile width, every decision
//! table mode, and every raw-access fallback re-derives operating points
//! from the same few hundred distinct chain counts. [`DesignCache`] computes
//! each design at most once while it stays resident and shares it behind an
//! [`Arc`], and answers the `best design with ≤ m chains` query from an
//! incrementally extended prefix minimum instead of re-scanning `1..=m`
//! designs per call (the raw-decision path is quadratic in the TAM width
//! without it).
//!
//! The memo is bounded (entry + byte caps, LRU eviction via
//! [`robust::BoundedCache`]) so a long-lived process planning many designs
//! cannot grow without bound. Eviction only ever costs recomputation:
//! `design_wrapper` is a pure function of `(core, m)`, so a re-derived
//! point is bit-identical to the evicted one and plans are unaffected by
//! the cap — the tests below prove it.

use std::sync::{Arc, Mutex};

use robust::{BoundedCache, CacheLimits, CacheStats};
use soc_model::Core;

use crate::design::{design_wrapper, WrapperDesign};

/// Default per-core entry cap. Chain counts are capped by the core's
/// stitchable units, almost always far below this, so CLI runs never evict
/// in practice — the cap is a backstop for pathological cores.
pub const DEFAULT_DESIGN_ENTRIES: usize = 4096;

/// Default per-core byte cap (16 MiB of design layouts).
pub const DEFAULT_DESIGN_BYTES: usize = 16 << 20;

/// One memoized wrapper operating point: the design and its uncompressed
/// test time for the core's full pattern count.
#[derive(Debug)]
pub struct DesignPoint {
    /// The best-fit-decreasing wrapper design at this chain count.
    pub design: WrapperDesign,
    /// `design.test_time(pattern_count)`, precomputed.
    pub test_time: u64,
}

impl DesignPoint {
    /// Approximate bytes this point pins in the cache.
    fn weight(&self) -> usize {
        std::mem::size_of::<Self>() + self.design.approx_bytes()
    }
}

/// Per-core bounded memo of [`design_wrapper`] results, keyed by chain
/// count.
///
/// Chain counts above [`Core::max_wrapper_chains`] produce the same design
/// as the cap itself (every stitchable unit already has its own chain), so
/// they share the cap's entry. All methods take `&self` and are safe to
/// call from several worker threads at once.
///
/// # Examples
///
/// ```
/// use soc_model::Core;
/// use wrapper::{best_design_up_to, DesignCache};
///
/// let core = Core::builder("c").inputs(8).fixed_chains(vec![16, 16])
///     .pattern_count(10).build()?;
/// let cache = DesignCache::new(&core);
/// let a = cache.design_at(4);
/// let b = cache.design_at(4);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // computed once while resident
/// let best = cache.best_up_to(16);
/// assert_eq!(best.test_time, best_design_up_to(&core, 16).1);
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
#[derive(Debug)]
pub struct DesignCache<'a> {
    core: &'a Core,
    /// `max_wrapper_chains().max(1)`; every key is clamped to `1..=cap`.
    cap: u32,
    points: Mutex<BoundedCache<u32, Arc<DesignPoint>>>,
    /// `prefix[i]` = (chain count, test time) of the best design over
    /// `m ∈ 1..=i+1`, ties keeping the smallest chain count. Extended
    /// lazily as wider queries arrive. Stores plain values, so evicting a
    /// design never invalidates an already-computed prefix.
    prefix: Mutex<Vec<(u32, u64)>>,
}

impl<'a> DesignCache<'a> {
    /// Creates an empty cache for `core` with the default bounds
    /// ([`DEFAULT_DESIGN_ENTRIES`] / [`DEFAULT_DESIGN_BYTES`]). Nothing is
    /// computed up front.
    pub fn new(core: &'a Core) -> Self {
        DesignCache::with_limits(
            core,
            CacheLimits::new(DEFAULT_DESIGN_ENTRIES, DEFAULT_DESIGN_BYTES),
        )
    }

    /// Creates an empty cache with explicit entry/byte caps. Tighter caps
    /// trade recomputation for memory; they never change any returned
    /// design.
    pub fn with_limits(core: &'a Core, limits: CacheLimits) -> Self {
        DesignCache {
            core,
            cap: core.max_wrapper_chains().max(1),
            points: Mutex::new(BoundedCache::new(limits)),
            prefix: Mutex::new(Vec::new()),
        }
    }

    /// The core this cache designs wrappers for.
    pub fn core(&self) -> &'a Core {
        self.core
    }

    /// Hit/miss/eviction counters of the design memo.
    pub fn stats(&self) -> CacheStats {
        self.points.lock().expect("design memo poisoned").stats()
    }

    /// Bytes currently pinned by memoized designs.
    pub fn resident_bytes(&self) -> usize {
        self.points.lock().expect("design memo poisoned").bytes()
    }

    /// The memoized design at chain count `m` (clamped to `1..=cap`),
    /// identical to [`design_wrapper(core, m)`](design_wrapper) whether it
    /// comes from the memo or is (re)computed after an eviction.
    pub fn design_at(&self, m: u32) -> Arc<DesignPoint> {
        let key = m.clamp(1, self.cap);
        if let Some(hit) = self.points.lock().expect("design memo poisoned").get(&key) {
            return Arc::clone(hit);
        }
        // Compute outside the lock: design_wrapper is pure, so two racing
        // threads at worst both derive the same point and the second
        // insert replaces the first with an identical value.
        let design = design_wrapper(self.core, key);
        let test_time = design.test_time(u64::from(self.core.pattern_count()));
        let point = Arc::new(DesignPoint { design, test_time });
        let weight = point.weight();
        let mut memo = self.points.lock().expect("design memo poisoned");
        if let Some(hit) = memo.get(&key) {
            return Arc::clone(hit);
        }
        memo.insert(key, Arc::clone(&point), weight);
        point
    }

    /// The best (lowest uncompressed test time) design using at most
    /// `max_chains` chains — the memoized equivalent of
    /// [`best_design_up_to`](crate::best_design_up_to), returning the same
    /// design (smallest chain count on ties) and test time.
    pub fn best_up_to(&self, max_chains: u32) -> Arc<DesignPoint> {
        let cap = max_chains.clamp(1, self.cap);
        let best_m = {
            let mut prefix = self.prefix.lock().expect("prefix poisoned");
            while (prefix.len() as u32) < cap {
                let m = prefix.len() as u32 + 1;
                let t = self.design_at(m).test_time;
                let entry = match prefix.last() {
                    Some(&(bm, bt)) if bt <= t => (bm, bt),
                    _ => (m, t),
                };
                prefix.push(entry);
            }
            prefix[cap as usize - 1].0
        };
        self.design_at(best_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::best_design_up_to;

    fn core() -> Core {
        Core::builder("t")
            .inputs(10)
            .outputs(6)
            .fixed_chains(vec![20, 18, 16, 12, 8])
            .pattern_count(50)
            .build()
            .unwrap()
    }

    #[test]
    fn design_at_matches_design_wrapper_and_is_shared() {
        let c = core();
        let cache = DesignCache::new(&c);
        for m in [1u32, 3, 7, 15, 100] {
            let cached = cache.design_at(m);
            let fresh = design_wrapper(&c, m);
            assert_eq!(cached.design.chain_count(), fresh.chain_count(), "m={m}");
            assert_eq!(cached.design.scan_in_length(), fresh.scan_in_length());
            assert_eq!(
                cached.test_time,
                fresh.test_time(u64::from(c.pattern_count()))
            );
            assert!(Arc::ptr_eq(&cached, &cache.design_at(m)));
        }
    }

    #[test]
    fn best_up_to_matches_uncached_scan() {
        let c = core();
        let cache = DesignCache::new(&c);
        // Query out of order to exercise incremental prefix extension.
        for limit in [6u32, 2, 16, 9, 1, 40] {
            let cached = cache.best_up_to(limit);
            let (design, time) = best_design_up_to(&c, limit);
            assert_eq!(cached.test_time, time, "limit={limit}");
            assert_eq!(cached.design.chain_count(), design.chain_count());
        }
    }

    #[test]
    fn clamped_chain_counts_share_the_cap_slot() {
        let c = core();
        let cache = DesignCache::new(&c);
        let cap = c.max_wrapper_chains();
        assert!(Arc::ptr_eq(
            &cache.design_at(cap),
            &cache.design_at(cap + 50)
        ));
        // And the shared design really is what design_wrapper produces.
        assert_eq!(
            cache.design_at(cap + 50).design.chain_count(),
            design_wrapper(&c, cap + 50).chain_count()
        );
    }

    /// Eviction under a tiny cap costs recomputation only: every design a
    /// bounded cache hands out is bit-identical to the unbounded cache's
    /// and to a fresh derivation, across an access pattern that forces
    /// constant thrashing.
    #[test]
    fn tiny_caps_preserve_design_identity() {
        let c = core();
        let unbounded = DesignCache::with_limits(&c, CacheLimits::unbounded());
        let tight = DesignCache::with_limits(&c, CacheLimits::new(2, usize::MAX));
        let pattern: Vec<u32> = (1..=16)
            .chain((1..=16).rev())
            .chain([5, 9, 1, 16])
            .collect();
        for m in pattern {
            let a = tight.design_at(m);
            let b = unbounded.design_at(m);
            assert_eq!(a.design, b.design, "m={m}");
            assert_eq!(a.test_time, b.test_time);
            assert_eq!(
                tight.best_up_to(m).test_time,
                unbounded.best_up_to(m).test_time
            );
        }
        assert!(tight.stats().evictions > 0, "cap must actually bite");
        assert!(tight.points.lock().unwrap().len() <= 2);
    }

    /// The byte cap is respected: resident bytes never exceed the cap even
    /// while every design is queried, and queries keep answering correctly.
    #[test]
    fn byte_cap_holds_while_serving() {
        let c = core();
        let one_point = DesignCache::new(&c).design_at(4).weight();
        let cache = DesignCache::with_limits(&c, CacheLimits::new(usize::MAX, 3 * one_point));
        for m in 1..=c.max_wrapper_chains() {
            let point = cache.design_at(m);
            assert_eq!(
                point.design.chain_count(),
                design_wrapper(&c, m).chain_count()
            );
            assert!(
                cache.resident_bytes() <= 3 * one_point,
                "resident {} over cap {}",
                cache.resident_bytes(),
                3 * one_point
            );
        }
    }
}
