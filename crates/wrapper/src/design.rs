//! Wrapper-chain design: partitioning a core's scanned elements into
//! wrapper chains (the `Design_wrapper` best-fit-decreasing heuristic of
//! Iyengar, Chakrabarty & Marinissen, ITC 2001 / JETTA 2002).

use soc_model::{Core, ScanArchitecture, Trit, TritVec};
use std::ops::Range;

/// Layout of one wrapper chain: which cube positions it loads, in shift
/// order, plus its unload (response) length.
///
/// A cube's positions are numbered canonically: wrapper input cells first
/// (functional inputs, then bidirectionals), then internal scan cells in
/// chain/stitch order. A chain's *load sequence* is the concatenation of its
/// `segments`; element `j` of the sequence is the bit the chain receives at
/// scan-in cycle `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLayout {
    segments: Vec<Range<u64>>,
    load_len: u64,
    unload_len: u64,
}

impl ChainLayout {
    fn empty() -> Self {
        ChainLayout {
            segments: Vec::new(),
            load_len: 0,
            unload_len: 0,
        }
    }

    fn push_segment(&mut self, seg: Range<u64>) {
        self.load_len += seg.end - seg.start;
        // Merge with the previous segment when contiguous, keeping the
        // common case (balanced block partitions) at one segment per chain.
        if let Some(last) = self.segments.last_mut() {
            if last.end == seg.start {
                last.end = seg.end;
                return;
            }
        }
        self.segments.push(seg);
    }

    /// Number of stimulus bits this chain loads per pattern.
    pub fn load_len(&self) -> u64 {
        self.load_len
    }

    /// Number of response bits this chain unloads per pattern.
    pub fn unload_len(&self) -> u64 {
        self.unload_len
    }

    /// The cube-position ranges forming the load sequence, in shift order.
    pub fn segments(&self) -> &[Range<u64>] {
        &self.segments
    }

    /// Cube position loaded at scan-in cycle `depth`, or `None` when the
    /// chain is shorter than `depth + 1` (an idle/pad cycle).
    pub fn position_at(&self, depth: u64) -> Option<u64> {
        if depth >= self.load_len {
            return None;
        }
        let mut remaining = depth;
        for seg in &self.segments {
            let len = seg.end - seg.start;
            if remaining < len {
                return Some(seg.start + remaining);
            }
            remaining -= len;
        }
        // `load_len` equals the segment sum by construction, so this is
        // unreachable for designs built by `design_wrapper`; degrade to an
        // idle cycle rather than panicking — `position_at` sits on the
        // untrusted vector-image verification path.
        debug_assert!(false, "load_len covers all segments");
        None
    }
}

/// A complete wrapper design for one core at a given chain count.
///
/// # Examples
///
/// ```
/// use soc_model::Core;
/// use wrapper::design_wrapper;
///
/// let core = Core::builder("c")
///     .inputs(4)
///     .outputs(2)
///     .fixed_chains(vec![8, 6, 6])
///     .pattern_count(10)
///     .build()?;
/// let design = design_wrapper(&core, 2);
/// assert_eq!(design.chain_count(), 2);
/// // 20 scan cells + 4 input cells over 2 chains: best max load is 12.
/// assert_eq!(design.scan_in_length(), 12);
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperDesign {
    chains: Vec<ChainLayout>,
    scan_in: u64,
    scan_out: u64,
}

impl WrapperDesign {
    /// Number of (non-empty) wrapper chains.
    pub fn chain_count(&self) -> u32 {
        self.chains.len() as u32
    }

    /// The per-chain layouts.
    pub fn chains(&self) -> &[ChainLayout] {
        &self.chains
    }

    /// Approximate in-memory footprint of this design in bytes (struct
    /// plus chain/segment heap storage). Used by the bounded design cache
    /// to charge entries against its byte cap.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.chains.len() * size_of::<ChainLayout>()
            + self
                .chains
                .iter()
                .map(|c| c.segments.len() * size_of::<Range<u64>>())
                .sum::<usize>()
    }

    /// Longest load length over all chains (`s_i`).
    pub fn scan_in_length(&self) -> u64 {
        self.scan_in
    }

    /// Longest unload length over all chains (`s_o`).
    pub fn scan_out_length(&self) -> u64 {
        self.scan_out
    }

    /// Test application time in clock cycles for `patterns` patterns when
    /// the wrapper chains are driven directly from TAM wires (no
    /// compression): `(1 + max(s_i, s_o))·p + min(s_i, s_o)`
    /// (Iyengar et al., JETTA 2002).
    pub fn test_time(&self, patterns: u64) -> u64 {
        let max = self.scan_in.max(self.scan_out);
        let min = self.scan_in.min(self.scan_out);
        (1 + max) * patterns + min
    }

    /// Extracts scan slice `depth` of `cube`: one symbol per wrapper chain —
    /// the bit each chain receives at scan-in cycle `depth`, with `X` for
    /// chains already past their load length (idle/pad bits).
    ///
    /// # Panics
    ///
    /// Panics if a chain references a position beyond `cube.len()`.
    pub fn slice(&self, cube: &TritVec, depth: u64) -> TritVec {
        let mut out = TritVec::with_capacity(self.chains.len());
        for chain in &self.chains {
            match chain.position_at(depth) {
                Some(pos) => out.push(cube.get(pos as usize)),
                None => out.push(Trit::X),
            }
        }
        out
    }

    /// Iterates over all `scan_in_length()` slices of `cube`, shallowest
    /// first.
    pub fn slices<'a>(&'a self, cube: &'a TritVec) -> Slices<'a> {
        Slices {
            design: self,
            cube,
            depth: 0,
        }
    }
}

/// Iterator over the scan slices of one cube, produced by
/// [`WrapperDesign::slices`].
#[derive(Debug, Clone)]
pub struct Slices<'a> {
    design: &'a WrapperDesign,
    cube: &'a TritVec,
    depth: u64,
}

impl Iterator for Slices<'_> {
    type Item = TritVec;

    fn next(&mut self) -> Option<TritVec> {
        if self.depth >= self.design.scan_in_length() {
            return None;
        }
        let s = self.design.slice(self.cube, self.depth);
        self.depth += 1;
        Some(s)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.design.scan_in_length() - self.depth) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Slices<'_> {}

/// Designs a wrapper with at most `m` chains for `core`, minimizing the
/// longer of scan-in and scan-out length (best-fit-decreasing, per
/// `Design_wrapper`).
///
/// Chains that would stay empty are dropped, so the returned design may
/// have fewer than `m` chains; [`WrapperDesign::chain_count`] reports the
/// effective number.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn design_wrapper(core: &Core, m: u32) -> WrapperDesign {
    assert!(m > 0, "wrapper chain count must be positive");
    let m = m.min(core.max_wrapper_chains()) as usize;

    let io_inputs = u64::from(core.inputs()) + u64::from(core.bidirs());
    let io_outputs = u64::from(core.outputs()) + u64::from(core.bidirs());
    let scan_base = io_inputs; // cube positions of scan cells start here

    let mut chains: Vec<ChainLayout> = (0..m).map(|_| ChainLayout::empty()).collect();

    // Step 1: assign internal scan chains (atomic for hard cores, balanced
    // blocks for soft cores) to wrapper chains, longest units first, each to
    // the currently shortest wrapper chain.
    match core.scan() {
        ScanArchitecture::Combinational => {}
        ScanArchitecture::Fixed { chain_lengths } => {
            let mut units: Vec<(usize, u32)> = chain_lengths.iter().copied().enumerate().collect();
            units.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            // Precompute each fixed chain's base position in the cube.
            let mut bases = Vec::with_capacity(chain_lengths.len());
            let mut acc = scan_base;
            for &l in chain_lengths {
                bases.push(acc);
                acc += u64::from(l);
            }
            for (idx, len) in units {
                let target = shortest_chain(&chains);
                let base = bases[idx];
                let seg = base..base + u64::from(len);
                chains[target].push_segment(seg);
                chains[target].unload_len += u64::from(len);
            }
        }
        ScanArchitecture::Flexible { cells, max_chains } => {
            // A soft core's cells can be stitched freely up to the flow's
            // chain limit; a balanced block partition is optimal for
            // minimizing the longest chain.
            let cells = u64::from(*cells);
            if cells > 0 {
                let k = (m as u64).min(cells).min(u64::from(*max_chains));
                let base_len = cells / k;
                let extra = cells % k;
                let mut start = scan_base;
                for i in 0..k {
                    let len = base_len + u64::from(i < extra);
                    let seg = start..start + len;
                    start += len;
                    let target = i as usize;
                    chains[target].push_segment(seg);
                    chains[target].unload_len += len;
                }
            }
        }
    }

    // Step 2: wrapper input cells, one at a time, each to the wrapper chain
    // with the shortest load length.
    for pos in 0..io_inputs {
        let target = shortest_chain(&chains);
        chains[target].push_segment(pos..pos + 1);
    }

    // Step 3: wrapper output cells to the chain with the shortest unload
    // length (no cube positions: responses are not planned).
    let mut unload_extra = vec![0u64; m];
    for _ in 0..io_outputs {
        let target = (0..m)
            .min_by_key(|&i| (chains[i].unload_len + unload_extra[i], i))
            .expect("m > 0");
        unload_extra[target] += 1;
    }
    for (chain, extra) in chains.iter_mut().zip(unload_extra) {
        chain.unload_len += extra;
    }

    chains.retain(|c| c.load_len > 0 || c.unload_len > 0);
    if chains.is_empty() {
        chains.push(ChainLayout::empty());
    }
    let scan_in = chains.iter().map(|c| c.load_len).max().unwrap_or(0);
    let scan_out = chains.iter().map(|c| c.unload_len).max().unwrap_or(0);
    WrapperDesign {
        chains,
        scan_in,
        scan_out,
    }
}

fn shortest_chain(chains: &[ChainLayout]) -> usize {
    chains
        .iter()
        .enumerate()
        .min_by_key(|(i, c)| (c.load_len, *i))
        .map(|(i, _)| i)
        .expect("at least one chain")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::Core;

    fn hard_core() -> Core {
        Core::builder("h")
            .inputs(4)
            .outputs(3)
            .fixed_chains(vec![8, 6, 6, 4])
            .pattern_count(10)
            .build()
            .unwrap()
    }

    #[test]
    fn bfd_balances_fixed_chains() {
        let d = design_wrapper(&hard_core(), 2);
        // 24 scan cells + 4 inputs = 28 load bits over 2 chains → 14 each.
        assert_eq!(d.chain_count(), 2);
        assert_eq!(d.scan_in_length(), 14);
        let total: u64 = d.chains().iter().map(ChainLayout::load_len).sum();
        assert_eq!(total, 28);
    }

    #[test]
    fn single_chain_takes_everything() {
        let c = hard_core();
        let d = design_wrapper(&c, 1);
        assert_eq!(d.chain_count(), 1);
        assert_eq!(d.scan_in_length(), c.scan_load_bits());
        assert_eq!(d.scan_out_length(), c.scan_unload_bits());
    }

    #[test]
    fn chain_count_clamped_to_core_capacity() {
        let c = hard_core(); // max chains = 4 fixed + 4 inputs = 8
        let d = design_wrapper(&c, 100);
        assert!(d.chain_count() <= 8);
    }

    #[test]
    fn more_chains_never_lengthen_scan_in() {
        let c = hard_core();
        let mut prev = u64::MAX;
        for m in 1..=8 {
            let d = design_wrapper(&c, m);
            assert!(d.scan_in_length() <= prev, "m={m}");
            prev = d.scan_in_length();
        }
    }

    #[test]
    fn flexible_core_balances_cells() {
        let c = Core::builder("s")
            .flexible_cells(100, 64)
            .inputs(2)
            .pattern_count(5)
            .build()
            .unwrap();
        let d = design_wrapper(&c, 7);
        assert_eq!(d.chain_count(), 7);
        // 100 cells over 7 chains → 15/14; the 2 input cells go on the two
        // shortest chains → max load stays 15.
        assert_eq!(d.scan_in_length(), 15);
        let loads: u64 = d.chains().iter().map(ChainLayout::load_len).sum();
        assert_eq!(loads, 102);
    }

    #[test]
    fn every_cube_position_loaded_exactly_once() {
        let c = hard_core();
        for m in [1u32, 2, 3, 5, 8] {
            let d = design_wrapper(&c, m);
            let mut seen = vec![0u32; c.scan_load_bits() as usize];
            for chain in d.chains() {
                for depth in 0..chain.load_len() {
                    let pos = chain.position_at(depth).unwrap() as usize;
                    seen[pos] += 1;
                }
            }
            assert!(seen.iter().all(|&n| n == 1), "m={m}: {seen:?}");
        }
    }

    #[test]
    fn unload_side_counts_outputs() {
        let d = design_wrapper(&hard_core(), 2);
        // 24 scan cells + 3 outputs = 27 unload bits over 2 chains → 14/13.
        assert_eq!(d.scan_out_length(), 14);
    }

    #[test]
    fn test_time_matches_jetta_formula() {
        let d = design_wrapper(&hard_core(), 2);
        let (si, so) = (d.scan_in_length(), d.scan_out_length());
        assert_eq!(d.test_time(10), (1 + si.max(so)) * 10 + si.min(so));
    }

    #[test]
    fn combinational_core_uses_io_cells_only() {
        let c = Core::builder("comb")
            .inputs(6)
            .outputs(6)
            .pattern_count(3)
            .build()
            .unwrap();
        let d = design_wrapper(&c, 3);
        assert_eq!(d.chain_count(), 3);
        assert_eq!(d.scan_in_length(), 2);
        assert_eq!(d.scan_out_length(), 2);
    }

    #[test]
    fn slices_cover_cube_with_padding() {
        let c = Core::builder("p")
            .inputs(1)
            .fixed_chains(vec![4, 2])
            .pattern_count(1)
            .build()
            .unwrap();
        let d = design_wrapper(&c, 2);
        let cube: TritVec = "1010101".parse().unwrap(); // 1 input + 6 cells
        let slices: Vec<TritVec> = d.slices(&cube).collect();
        assert_eq!(slices.len() as u64, d.scan_in_length());
        // Each slice has one symbol per chain.
        for s in &slices {
            assert_eq!(s.len() as u32, d.chain_count());
        }
        // Padding: the shorter chain contributes X at the deepest slices.
        let care_positions: usize = slices.iter().map(|s| s.count_cares()).sum();
        assert_eq!(care_positions, 7);
    }

    #[test]
    fn position_at_out_of_range_is_none() {
        let d = design_wrapper(&hard_core(), 3);
        let chain = &d.chains()[0];
        assert!(chain.position_at(chain.load_len()).is_none());
        assert!(chain.position_at(0).is_some());
    }

    #[test]
    #[should_panic(expected = "chain count must be positive")]
    fn zero_chains_panics() {
        design_wrapper(&hard_core(), 0);
    }
}
