//! IEEE 1500 (SECT) wrapper control: instruction register, operating
//! modes, and the reconfiguration overhead between tests.
//!
//! The paper's wrappers are IEEE 1500-style; the standard defines the
//! *control* side this module models: every wrapper has a Wrapper
//! Instruction Register (WIR) loaded serially through the Wrapper Serial
//! Port, and the instruction selects the operating mode — functional
//! bypass, inward-facing test (the mode the whole planner works in),
//! outward-facing interconnect test, or core bypass. Switching a core
//! between tests therefore costs WIR-load cycles, which matter when many
//! short tests share a TAM.

use std::fmt;

/// The standard wrapper operating modes (instruction opcodes follow the
/// common 3-bit encoding used in the 1500 literature; the standard leaves
/// opcodes implementation-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WrapperMode {
    /// Normal functional operation; wrapper transparent.
    #[default]
    Functional,
    /// Inward-facing test: scan access to the core (`WS_INTEST` /
    /// `WP_INTEST`) — the mode all test planning in this repository
    /// schedules.
    Intest,
    /// Outward-facing test of the surrounding interconnect (`WS_EXTEST`).
    Extest,
    /// Core bypassed: the wrapper presents a single-bit path
    /// (`WS_BYPASS`).
    Bypass,
}

impl WrapperMode {
    /// The 3-bit opcode used by [`Wir`].
    pub fn opcode(self) -> u8 {
        match self {
            WrapperMode::Functional => 0b000,
            WrapperMode::Intest => 0b001,
            WrapperMode::Extest => 0b010,
            WrapperMode::Bypass => 0b011,
        }
    }

    /// Decodes an opcode, or `None` for a reserved value.
    pub fn from_opcode(op: u8) -> Option<Self> {
        Some(match op {
            0b000 => WrapperMode::Functional,
            0b001 => WrapperMode::Intest,
            0b010 => WrapperMode::Extest,
            0b011 => WrapperMode::Bypass,
            _ => return None,
        })
    }
}

impl fmt::Display for WrapperMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WrapperMode::Functional => "functional",
            WrapperMode::Intest => "INTEST",
            WrapperMode::Extest => "EXTEST",
            WrapperMode::Bypass => "BYPASS",
        })
    }
}

/// A Wrapper Instruction Register: shift/update semantics per IEEE 1500.
///
/// Bits are shifted in serially (`shift`), then committed atomically
/// (`update`); until the update, the active mode is unchanged — exactly
/// the two-phase behaviour the standard mandates so cores never glitch
/// through half-loaded instructions.
///
/// # Examples
///
/// ```
/// use wrapper::{Wir, WrapperMode};
///
/// let mut wir = Wir::new();
/// assert_eq!(wir.mode(), WrapperMode::Functional);
/// wir.load(WrapperMode::Intest);
/// assert_eq!(wir.mode(), WrapperMode::Intest);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Wir {
    shift_reg: u8,
    mode: WrapperMode,
    shifted: u32,
}

/// WIR length in bits (3-bit opcodes).
pub const WIR_LENGTH: u32 = 3;

impl Wir {
    /// A WIR in functional mode (the standard's reset state).
    pub fn new() -> Self {
        Wir::default()
    }

    /// The active operating mode.
    pub fn mode(&self) -> WrapperMode {
        self.mode
    }

    /// Shifts one instruction bit in (LSB first).
    pub fn shift(&mut self, bit: bool) {
        self.shift_reg = ((self.shift_reg >> 1) | (u8::from(bit) << (WIR_LENGTH - 1))) & 0b111;
        self.shifted += 1;
    }

    /// Commits the shifted instruction. Reserved opcodes fall back to
    /// functional mode, as the standard recommends for safety.
    pub fn update(&mut self) {
        self.mode = WrapperMode::from_opcode(self.shift_reg).unwrap_or(WrapperMode::Functional);
        self.shifted = 0;
    }

    /// Convenience: shift + update a whole instruction.
    pub fn load(&mut self, mode: WrapperMode) {
        let op = mode.opcode();
        for i in 0..WIR_LENGTH {
            self.shift(op >> i & 1 == 1);
        }
        self.update();
    }
}

/// Cycles needed to reconfigure a set of daisy-chained wrappers on one
/// TAM so that `active` is in INTEST and the others are bypassed: the
/// serial control chain shifts all WIRs at once (`WIR_LENGTH` cycles) plus
/// one update cycle.
///
/// With `cores_on_tam` wrappers bypassed, the *data* path to the active
/// core also grows by one bypass bit per upstream wrapper — returned as
/// the second component so schedulers can add it to the scan path.
pub fn reconfiguration_overhead(cores_on_tam: u32, active: u32) -> (u64, u64) {
    assert!(active < cores_on_tam, "active core index out of range");
    let wir_cycles = u64::from(WIR_LENGTH) + 1;
    let bypass_bits = u64::from(cores_on_tam - 1);
    (wir_cycles, bypass_bits)
}

/// Adds IEEE 1500 reconfiguration overhead to a serial-per-TAM test time:
/// one WIR load before every test on the TAM, plus the bypass-bit scan
/// overhead per pattern of each test.
///
/// `tests` is `(patterns, test_time)` per core on the TAM, in schedule
/// order.
pub fn tam_time_with_control(tests: &[(u64, u64)]) -> u64 {
    let k = tests.len() as u32;
    if k == 0 {
        return 0;
    }
    tests
        .iter()
        .enumerate()
        .map(|(i, &(patterns, time))| {
            let (wir, bypass) = reconfiguration_overhead(k, i as u32);
            time + wir + bypass * patterns
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcodes_roundtrip() {
        for mode in [
            WrapperMode::Functional,
            WrapperMode::Intest,
            WrapperMode::Extest,
            WrapperMode::Bypass,
        ] {
            assert_eq!(WrapperMode::from_opcode(mode.opcode()), Some(mode));
        }
        assert_eq!(WrapperMode::from_opcode(0b111), None);
    }

    #[test]
    fn wir_two_phase_update() {
        let mut wir = Wir::new();
        // Shift INTEST but do not update: mode unchanged.
        let op = WrapperMode::Intest.opcode();
        for i in 0..WIR_LENGTH {
            wir.shift(op >> i & 1 == 1);
            assert_eq!(wir.mode(), WrapperMode::Functional, "mid-shift glitch");
        }
        wir.update();
        assert_eq!(wir.mode(), WrapperMode::Intest);
    }

    #[test]
    fn load_reaches_every_mode() {
        let mut wir = Wir::new();
        for mode in [
            WrapperMode::Intest,
            WrapperMode::Extest,
            WrapperMode::Bypass,
            WrapperMode::Functional,
        ] {
            wir.load(mode);
            assert_eq!(wir.mode(), mode);
        }
    }

    #[test]
    fn reserved_opcodes_fail_safe() {
        let mut wir = Wir::new();
        wir.load(WrapperMode::Intest);
        for _ in 0..WIR_LENGTH {
            wir.shift(true); // 0b111 is reserved
        }
        wir.update();
        assert_eq!(wir.mode(), WrapperMode::Functional);
    }

    #[test]
    fn overhead_scales_with_sharing() {
        let (wir1, byp1) = reconfiguration_overhead(1, 0);
        let (wir4, byp4) = reconfiguration_overhead(4, 2);
        assert_eq!(wir1, wir4, "WIR chain shifts in parallel");
        assert_eq!(byp1, 0);
        assert_eq!(byp4, 3);
    }

    #[test]
    fn tam_time_adds_control_cost() {
        // Two tests of 100 patterns/1000 cycles each, sharing a TAM.
        let plain: u64 = 2 * 1000;
        let with = tam_time_with_control(&[(100, 1000), (100, 1000)]);
        // Each test: +4 WIR cycles +1 bypass bit × 100 patterns.
        assert_eq!(with, plain + 2 * (4 + 100));
        assert_eq!(tam_time_with_control(&[]), 0);
        // A TAM with a single core pays only the WIR loads.
        assert_eq!(tam_time_with_control(&[(50, 500)]), 500 + 4);
    }

    #[test]
    fn control_overhead_is_small_for_realistic_tests() {
        // The paper neglects this overhead; justify that: < 1% for
        // tests of tens of thousands of cycles.
        let tests = [(200u64, 50_000u64), (150, 40_000), (100, 30_000)];
        let plain: u64 = tests.iter().map(|t| t.1).sum();
        let with = tam_time_with_control(&tests);
        let overhead = (with - plain) as f64 / plain as f64;
        assert!(overhead < 0.01, "overhead {overhead}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn active_index_validated() {
        reconfiguration_overhead(2, 2);
    }
}
