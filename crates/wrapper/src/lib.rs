//! IEEE 1500-style test wrapper design for embedded cores.
//!
//! A *wrapper* isolates a core for modular test; its scanned elements
//! (internal scan chains plus wrapper boundary cells) are concatenated into
//! *wrapper chains* that the test access mechanism (TAM) — or an on-chip
//! decompressor — drives in parallel. This crate implements the classic
//! best-fit-decreasing wrapper-design heuristic (`Design_wrapper`, Iyengar,
//! Chakrabarty & Marinissen) and the associated test-time model, and exposes
//! the *scan slice* view of a test cube that compression schemes operate on.
//!
//! # Examples
//!
//! ```
//! use soc_model::Core;
//! use wrapper::{design_wrapper, pareto_points};
//!
//! let core = Core::builder("s5378")
//!     .inputs(35)
//!     .outputs(49)
//!     .fixed_chains(vec![45, 45, 45, 44])
//!     .pattern_count(97)
//!     .build()?;
//!
//! // Four chains: every fixed scan chain gets its own wrapper chain.
//! let design = design_wrapper(&core, 4);
//! assert_eq!(design.chain_count(), 4);
//!
//! // The planner consumes the Pareto frontier of (width, test time).
//! let frontier = pareto_points(&core, 16);
//! assert!(frontier.len() > 1);
//! # Ok::<(), soc_model::BuildCoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod design;
mod ieee1500;
mod pareto;
mod power;
mod slicemat;

pub use cache::{DesignCache, DesignPoint, DEFAULT_DESIGN_BYTES, DEFAULT_DESIGN_ENTRIES};
pub use design::{design_wrapper, ChainLayout, Slices, WrapperDesign};
pub use ieee1500::{reconfiguration_overhead, tam_time_with_control, Wir, WrapperMode, WIR_LENGTH};
pub use pareto::{best_design_up_to, pareto_points, test_time_at, WrapperPoint};
pub use power::{estimate_scan_power, weighted_transitions, Fill, ScanPower};
pub use slicemat::SliceMatrix;
