//! Enumeration of useful wrapper-design operating points.
//!
//! For TAM-width assignment the planner needs, per core, the test time at
//! every candidate width. Only a few widths actually change the design
//! (`Design_wrapper` produces staircase-shaped `s_i(m)` curves), so the
//! Pareto-optimal set of operating points is small and worth precomputing.

use soc_model::Core;

use crate::design::{design_wrapper, WrapperDesign};

/// One wrapper operating point: the narrowest chain count achieving its
/// scan lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperPoint {
    /// Requested (and effective) number of wrapper chains.
    pub chains: u32,
    /// Longest scan-in length `s_i`.
    pub scan_in: u64,
    /// Longest scan-out length `s_o`.
    pub scan_out: u64,
    /// Test time for the core's full pattern count, without compression.
    pub test_time: u64,
}

/// Computes the uncompressed test time of `core` with `m` wrapper chains.
///
/// Convenience over [`design_wrapper`] + [`WrapperDesign::test_time`].
///
/// ```
/// use soc_model::Core;
/// use wrapper::test_time_at;
///
/// let core = Core::builder("c").inputs(8).fixed_chains(vec![16, 16])
///     .pattern_count(10).build()?;
/// assert!(test_time_at(&core, 4) <= test_time_at(&core, 1));
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
pub fn test_time_at(core: &Core, m: u32) -> u64 {
    design_wrapper(core, m).test_time(u64::from(core.pattern_count()))
}

/// Enumerates the Pareto-optimal wrapper operating points of `core` for
/// chain counts `1..=max_chains`: points are emitted in increasing chain
/// count and strictly decreasing test time (dominated widths are skipped).
///
/// # Examples
///
/// ```
/// use soc_model::Core;
/// use wrapper::pareto_points;
///
/// let core = Core::builder("c").inputs(8).fixed_chains(vec![16, 16])
///     .pattern_count(10).build()?;
/// let points = pareto_points(&core, 8);
/// assert!(!points.is_empty());
/// assert!(points.windows(2).all(|w| w[0].test_time > w[1].test_time));
/// # Ok::<(), soc_model::BuildCoreError>(())
/// ```
pub fn pareto_points(core: &Core, max_chains: u32) -> Vec<WrapperPoint> {
    let cap = max_chains.min(core.max_wrapper_chains()).max(1);
    let mut points: Vec<WrapperPoint> = Vec::new();
    for m in 1..=cap {
        let d = design_wrapper(core, m);
        let t = d.test_time(u64::from(core.pattern_count()));
        if points.last().is_none_or(|p| t < p.test_time) {
            points.push(WrapperPoint {
                chains: m,
                scan_in: d.scan_in_length(),
                scan_out: d.scan_out_length(),
                test_time: t,
            });
        }
    }
    points
}

/// Returns the best (lowest-test-time) wrapper design for `core` that uses
/// at most `max_chains` chains, together with its test time.
pub fn best_design_up_to(core: &Core, max_chains: u32) -> (WrapperDesign, u64) {
    let cap = max_chains.min(core.max_wrapper_chains()).max(1);
    let mut best: Option<(WrapperDesign, u64)> = None;
    for m in 1..=cap {
        let d = design_wrapper(core, m);
        let t = d.test_time(u64::from(core.pattern_count()));
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((d, t));
        }
    }
    best.expect("cap >= 1 yields at least one design")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_model::benchmarks;

    fn core() -> Core {
        Core::builder("t")
            .inputs(10)
            .outputs(6)
            .fixed_chains(vec![20, 18, 16, 12, 8])
            .pattern_count(50)
            .build()
            .unwrap()
    }

    #[test]
    fn pareto_points_strictly_improve() {
        let pts = pareto_points(&core(), 16);
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].chains < w[1].chains);
            assert!(w[0].test_time > w[1].test_time);
        }
    }

    #[test]
    fn first_point_is_single_chain() {
        let pts = pareto_points(&core(), 16);
        assert_eq!(pts[0].chains, 1);
        assert_eq!(pts[0].test_time, test_time_at(&core(), 1));
    }

    #[test]
    fn best_design_matches_min_over_range() {
        let c = core();
        let (_, best) = best_design_up_to(&c, 6);
        let brute = (1..=6).map(|m| test_time_at(&c, m)).min().unwrap();
        assert_eq!(best, brute);
    }

    #[test]
    fn wider_never_beats_pareto_frontier() {
        // On a d695 core the frontier at 16 chains must be at least as good
        // as any single width below 16.
        let soc = benchmarks::d695();
        for c in soc.cores() {
            let pts = pareto_points(c, 16);
            let best = pts.last().unwrap().test_time;
            for m in 1..=16 {
                assert!(test_time_at(c, m) >= best, "{} m={m}", c.name());
            }
        }
    }
}
