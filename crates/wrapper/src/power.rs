//! Scan-power estimation: weighted transition counts (WTC).
//!
//! Scan shifting toggles far more nodes than functional operation, so test
//! scheduling is often power-limited. The standard estimate (Sankaralingam
//! et al.) weights each stimulus transition by how far it travels through
//! the scan chain: a transition entering cell `j` of an `L`-cell chain
//! shifts through `L − j` cells, toggling each.
//!
//! Don't-care positions are resolved by an X-fill policy before counting —
//! `Zero` fill (what the FDR encoder assumes) or `MinTransition` fill
//! (repeat the previous care value), the classic low-power choice. The
//! estimates plug directly into
//! [`tam::PowerModel`](../tam/struct.PowerModel.html)-style scheduling as
//! per-core power figures.

use soc_model::{TestSet, Trit, TritVec};

use crate::design::WrapperDesign;

/// X-fill policy applied before counting transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fill {
    /// Fill every don't-care with 0.
    #[default]
    Zero,
    /// Repeat the previous shifted value (minimum-transition fill).
    MinTransition,
}

/// Weighted transition count of one cube under `design`: the sum over
/// wrapper chains of `Σ_j (len − 1 − j) · (b_j ⊕ b_{j+1})`, where `b_j` is
/// the bit entering at shift cycle `j` after X-fill.
///
/// # Panics
///
/// Panics if the cube is shorter than the design's deepest position.
pub fn weighted_transitions(design: &WrapperDesign, cube: &TritVec, fill: Fill) -> u64 {
    let s_i = design.scan_in_length();
    let mut total = 0u64;
    for chain in design.chains() {
        let mut prev: Option<bool> = None;
        for depth in 0..s_i {
            let bit = resolve(chain_bit(design, chain, cube, depth), prev, fill);
            if let Some(p) = prev {
                if p != bit {
                    // The transition formed at cycle `depth` travels
                    // through the rest of the shift.
                    total += s_i - depth;
                }
            }
            prev = Some(bit);
        }
    }
    total
}

fn chain_bit(
    _design: &WrapperDesign,
    chain: &crate::design::ChainLayout,
    cube: &TritVec,
    depth: u64,
) -> Trit {
    match chain.position_at(depth) {
        Some(pos) => cube.get(pos as usize),
        None => Trit::X,
    }
}

fn resolve(t: Trit, prev: Option<bool>, fill: Fill) -> bool {
    match t.value() {
        Some(b) => b,
        None => match fill {
            Fill::Zero => false,
            Fill::MinTransition => prev.unwrap_or(false),
        },
    }
}

/// Per-core scan-power estimate over a whole test set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPower {
    /// Mean WTC per shift cycle (average switching activity).
    pub average: f64,
    /// Largest per-pattern WTC per cycle (peak switching activity).
    pub peak: f64,
    /// Patterns evaluated.
    pub patterns: usize,
}

/// Estimates scan power for `test_set` under `design`, evaluating at most
/// `sample` evenly spaced patterns.
///
/// # Panics
///
/// Panics if `sample == 0` or the set is empty.
pub fn estimate_scan_power(
    design: &WrapperDesign,
    test_set: &TestSet,
    fill: Fill,
    sample: usize,
) -> ScanPower {
    assert!(sample > 0, "sample size must be positive");
    assert!(!test_set.is_empty(), "test set has no patterns");
    let p = test_set.pattern_count();
    let indices: Vec<usize> = if sample >= p {
        (0..p).collect()
    } else {
        let mut v: Vec<usize> = (0..sample).map(|i| i * p / sample).collect();
        v.dedup();
        v
    };
    let cycles = design.scan_in_length().max(1) as f64;
    let mut sum = 0.0;
    let mut peak = 0.0f64;
    for &pi in &indices {
        let cube = test_set.pattern(pi).expect("sampled index in range");
        let per_cycle = weighted_transitions(design, cube, fill) as f64 / cycles;
        sum += per_cycle;
        peak = peak.max(per_cycle);
    }
    ScanPower {
        average: sum / indices.len() as f64,
        peak,
        patterns: indices.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_wrapper;
    use soc_model::{Core, CubeSynthesis};

    fn prepared(density: f64, one_fraction: f64) -> (Core, WrapperDesign) {
        let mut core = Core::builder("p")
            .inputs(4)
            .outputs(4)
            .flexible_cells(600, 64)
            .pattern_count(10)
            .care_density(density)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(density)
            .one_fraction(one_fraction)
            .cluster(1)
            .synthesize(&core, 13);
        core.attach_test_set(ts).unwrap();
        let design = design_wrapper(&core, 8);
        (core, design)
    }

    #[test]
    fn all_zero_cube_has_no_transitions() {
        let core = Core::builder("z")
            .inputs(64)
            .pattern_count(1)
            .build()
            .unwrap();
        let design = design_wrapper(&core, 4);
        let cube: TritVec = "0".repeat(64).parse().unwrap();
        assert_eq!(weighted_transitions(&design, &cube, Fill::Zero), 0);
    }

    #[test]
    fn alternating_cube_is_worst_case() {
        // A single chain keeps the shift order equal to the cube order.
        let core = Core::builder("a")
            .inputs(64)
            .pattern_count(1)
            .build()
            .unwrap();
        let design = design_wrapper(&core, 1);
        let alternating: TritVec = "01".repeat(32).parse().unwrap();
        let constant: TritVec = "1".repeat(64).parse().unwrap();
        let wa = weighted_transitions(&design, &alternating, Fill::Zero);
        let wc = weighted_transitions(&design, &constant, Fill::Zero);
        assert!(wa > 5 * wc.max(1), "alternating {wa} vs constant {wc}");
    }

    #[test]
    fn min_transition_fill_never_increases_wtc() {
        let (core, design) = prepared(0.2, 0.5);
        for cube in core.test_set().unwrap().iter() {
            let zero = weighted_transitions(&design, cube, Fill::Zero);
            let mt = weighted_transitions(&design, cube, Fill::MinTransition);
            assert!(mt <= zero, "MT {mt} vs zero {zero}");
        }
    }

    #[test]
    fn mt_fill_wins_big_on_one_heavy_sparse_cubes() {
        // Sparse cubes whose care bits are mostly 1: zero-fill creates a
        // 0↔1 transition around every care bit, MT-fill almost none.
        let (core, design) = prepared(0.05, 0.95);
        let ts = core.test_set().unwrap();
        let zero: u64 = ts
            .iter()
            .map(|c| weighted_transitions(&design, c, Fill::Zero))
            .sum();
        let mt: u64 = ts
            .iter()
            .map(|c| weighted_transitions(&design, c, Fill::MinTransition))
            .sum();
        assert!(mt * 2 < zero, "MT {mt} vs zero {zero}");
    }

    #[test]
    fn estimate_reports_consistent_statistics() {
        let (core, design) = prepared(0.3, 0.5);
        let ts = core.test_set().unwrap();
        let est = estimate_scan_power(&design, ts, Fill::Zero, usize::MAX);
        assert_eq!(est.patterns, 10);
        assert!(est.peak >= est.average);
        assert!(est.average > 0.0);
        // Sampling returns the same order of magnitude.
        let sampled = estimate_scan_power(&design, ts, Fill::Zero, 3);
        let ratio = sampled.average / est.average;
        assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn denser_cubes_burn_more_power() {
        let (ca, da) = prepared(0.05, 0.5);
        let (cb, db) = prepared(0.6, 0.5);
        let pa = estimate_scan_power(&da, ca.test_set().unwrap(), Fill::Zero, usize::MAX);
        let pb = estimate_scan_power(&db, cb.test_set().unwrap(), Fill::Zero, usize::MAX);
        assert!(pb.average > pa.average);
    }

    #[test]
    #[should_panic(expected = "no patterns")]
    fn empty_test_set_panics() {
        let core = Core::builder("e")
            .inputs(4)
            .pattern_count(1)
            .build()
            .unwrap();
        let design = design_wrapper(&core, 2);
        estimate_scan_power(&design, &TestSet::new(4), Fill::Zero, 1);
    }
}
