//! Packed slice-major view of one cube under a wrapper design.
//!
//! [`WrapperDesign::slices`](crate::WrapperDesign::slices) materializes a
//! `TritVec` per scan depth through per-symbol `get`/`push` calls — fine
//! for correctness work, far too slow for the profile builder that
//! evaluates millions of slices. [`SliceMatrix`] computes the same
//! information in bulk: the cube's care and value planes are copied
//! chain-major (each chain's load sequence is a handful of contiguous cube
//! ranges, so this is a few sub-word copies per chain), then a blocked bit
//! transpose turns them slice-major. Rows then answer the encoder's
//! questions with popcounts.
//!
//! Pad positions (depths past a chain's load length) hold `care = 0`,
//! `value = 0` — exactly the don't-care encoding of
//! [`TritVec`](soc_model::TritVec), so no masking is needed downstream.

use soc_model::{copy_bits, BitMatrix, Trit, TritVec};

use crate::design::WrapperDesign;

/// Reusable slice-major care/value planes of one cube under one design.
///
/// # Examples
///
/// ```
/// use soc_model::Core;
/// use wrapper::{design_wrapper, SliceMatrix};
///
/// let core = Core::builder("c")
///     .inputs(1)
///     .fixed_chains(vec![4, 2])
///     .pattern_count(1)
///     .build()?;
/// let design = design_wrapper(&core, 2);
/// let cube = "1010101".parse()?;
/// let mut sm = SliceMatrix::new();
/// design.fill_slice_matrix(&cube, &mut sm);
/// assert_eq!(sm.depths() as u64, design.scan_in_length());
/// assert_eq!(sm.chains(), design.chain_count() as usize);
/// // Slice rows agree with the reference slice() path.
/// for depth in 0..design.scan_in_length() {
///     assert_eq!(sm.slice(depth as usize), design.slice(&cube, depth));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SliceMatrix {
    // Chain-major staging planes (rows = chains, cols = depths).
    stage_care: BitMatrix,
    stage_value: BitMatrix,
    // Slice-major planes (rows = depths, cols = chains).
    care: BitMatrix,
    value: BitMatrix,
}

impl SliceMatrix {
    /// Creates an empty matrix; [`WrapperDesign::fill_slice_matrix`] gives
    /// it a shape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scan depths (slice rows) currently held.
    pub fn depths(&self) -> usize {
        self.care.rows()
    }

    /// Number of wrapper chains (bits per slice row).
    pub fn chains(&self) -> usize {
        self.care.cols()
    }

    /// Packed care mask of the slice at `depth` (bit `k` = chain `k`).
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.depths()`.
    #[inline]
    pub fn care_row(&self, depth: usize) -> &[u64] {
        self.care.row(depth)
    }

    /// Packed value plane of the slice at `depth`, aligned with
    /// [`care_row`](Self::care_row); don't-care chains read `0`.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.depths()`.
    #[inline]
    pub fn value_row(&self, depth: usize) -> &[u64] {
        self.value.row(depth)
    }

    /// First chain whose care bit the packed slice `decoded` contradicts
    /// at `depth`, or `None` when every care bit is satisfied.
    ///
    /// `decoded` is a packed slice row (bit `k % 64` of word `k / 64` =
    /// chain `k`, at least [`chains`](Self::chains) bits). A chain
    /// violates exactly where `care & (decoded ^ value)` is set, so a
    /// clean row costs three word ops per 64 chains and the first
    /// offender falls out of a trailing-zeros count — the word-parallel
    /// heart of the batched stream verifier.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.depths()` or `decoded` holds fewer words
    /// than the care plane's rows.
    pub fn violating_chain(&self, depth: usize, decoded: &[u64]) -> Option<usize> {
        let care = self.care.row(depth);
        let value = self.value.row(depth);
        for (i, (&cw, &vw)) in care.iter().zip(value).enumerate() {
            // Bits past the chain count have care = 0, so padding in
            // `decoded` can never produce a false positive.
            let bad = cw & (decoded[i] ^ vw);
            if bad != 0 {
                return Some(i * 64 + bad.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Rebuilds the slice at `depth` as a `TritVec` — the slow reference
    /// view, for tests and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= self.depths()`.
    pub fn slice(&self, depth: usize) -> TritVec {
        let mut out = TritVec::with_capacity(self.chains());
        for k in 0..self.chains() {
            out.push(if !self.care.get(depth, k) {
                Trit::X
            } else if self.value.get(depth, k) {
                Trit::One
            } else {
                Trit::Zero
            });
        }
        out
    }
}

impl WrapperDesign {
    /// Fills `out` with the slice-major care/value planes of `cube` under
    /// this design: row `depth`, bit `k` is the symbol chain `k` receives
    /// at scan-in cycle `depth` (don't-care for pad cycles), identical to
    /// [`slice`](WrapperDesign::slice) symbol by symbol.
    ///
    /// `out` is reshaped in place; reusing one matrix across cubes makes
    /// the fill allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if a chain references a cube position at or beyond
    /// `cube.len()`.
    pub fn fill_slice_matrix(&self, cube: &TritVec, out: &mut SliceMatrix) {
        let chains = self.chains();
        let depth = self.scan_in_length() as usize;
        out.stage_care.reset(chains.len(), depth);
        out.stage_value.reset(chains.len(), depth);
        for (k, chain) in chains.iter().enumerate() {
            let mut at = 0usize;
            for seg in chain.segments() {
                let (start, len) = (seg.start as usize, (seg.end - seg.start) as usize);
                assert!(
                    start + len <= cube.len(),
                    "chain {k} references position {} beyond cube length {}",
                    start + len - 1,
                    cube.len()
                );
                copy_bits(out.stage_care.row_mut(k), at, cube.care_words(), start, len);
                copy_bits(
                    out.stage_value.row_mut(k),
                    at,
                    cube.value_words(),
                    start,
                    len,
                );
                at += len;
            }
        }
        out.stage_care.transpose_into(&mut out.care);
        out.stage_value.transpose_into(&mut out.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::design_wrapper;
    use soc_model::{Core, CubeSynthesis, SplitMix64};

    fn hard_core(chains: Vec<u32>, inputs: u32) -> Core {
        Core::builder("h")
            .inputs(inputs)
            .outputs(3)
            .fixed_chains(chains)
            .pattern_count(4)
            .build()
            .unwrap()
    }

    fn random_cube(len: usize, seed: u64) -> TritVec {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| match rng.next_below(4) {
                0 => Trit::Zero,
                1 => Trit::One,
                _ => Trit::X,
            })
            .collect()
    }

    #[test]
    fn matches_reference_slices_across_designs() {
        let core = hard_core(vec![17, 9, 33, 5, 12], 7);
        let cube = random_cube(core.scan_load_bits() as usize, 11);
        let mut sm = SliceMatrix::new();
        for m in [1u32, 2, 3, 5, 9, 12] {
            let design = design_wrapper(&core, m);
            design.fill_slice_matrix(&cube, &mut sm);
            assert_eq!(sm.depths() as u64, design.scan_in_length(), "m={m}");
            assert_eq!(sm.chains() as u32, design.chain_count(), "m={m}");
            for depth in 0..design.scan_in_length() {
                assert_eq!(
                    sm.slice(depth as usize),
                    design.slice(&cube, depth),
                    "m={m} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn flexible_core_with_many_chains_matches_reference() {
        let mut core = Core::builder("s")
            .inputs(20)
            .flexible_cells(700, 256)
            .pattern_count(2)
            .care_density(0.2)
            .build()
            .unwrap();
        let ts = CubeSynthesis::new(0.2).synthesize(&core, 5);
        core.attach_test_set(ts).unwrap();
        let cube = core.test_set().unwrap().pattern(0).unwrap().clone();
        let mut sm = SliceMatrix::new();
        for m in [64u32, 100, 200] {
            let design = design_wrapper(&core, m);
            design.fill_slice_matrix(&cube, &mut sm);
            for depth in [0, 1, design.scan_in_length() - 1] {
                assert_eq!(
                    sm.slice(depth as usize),
                    design.slice(&cube, depth),
                    "m={m}"
                );
            }
        }
    }

    #[test]
    fn matrix_reuse_reshapes_cleanly() {
        let core = hard_core(vec![30, 30], 2);
        let cube = random_cube(core.scan_load_bits() as usize, 3);
        let mut sm = SliceMatrix::new();
        let wide = design_wrapper(&core, 4);
        wide.fill_slice_matrix(&cube, &mut sm);
        let narrow = design_wrapper(&core, 1);
        narrow.fill_slice_matrix(&cube, &mut sm);
        assert_eq!(sm.chains(), 1);
        assert_eq!(sm.depths() as u64, narrow.scan_in_length());
        for depth in 0..narrow.scan_in_length() {
            assert_eq!(sm.slice(depth as usize), narrow.slice(&cube, depth));
        }
    }

    #[test]
    fn pad_cycles_read_as_dont_care() {
        let core = hard_core(vec![8, 2], 0);
        let design = design_wrapper(&core, 2);
        let cube = random_cube(core.scan_load_bits() as usize, 9);
        let mut sm = SliceMatrix::new();
        design.fill_slice_matrix(&cube, &mut sm);
        // The short chain pads at the deepest slices.
        let deepest = sm.slice(sm.depths() - 1);
        let reference = design.slice(&cube, design.scan_in_length() - 1);
        assert_eq!(deepest, reference);
        assert!(reference.iter().any(|t| t == Trit::X));
    }
}
