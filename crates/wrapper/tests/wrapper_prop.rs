//! Property tests for wrapper design: conservation of scanned elements,
//! monotone scan-in lengths, balance quality, and slice coverage, over
//! arbitrary core geometries.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_model::{Core, ScanArchitecture, Trit, TritVec};
use wrapper::{design_wrapper, pareto_points, ChainLayout};

fn arb_core() -> impl Strategy<Value = Core> {
    (
        prop_oneof![
            // Hard core with fixed chains.
            proptest::collection::vec(1u32..80, 0..8).prop_map(|c| if c.is_empty() {
                ScanArchitecture::Combinational
            } else {
                ScanArchitecture::Fixed { chain_lengths: c }
            }),
            // Soft core.
            (1u32..2_000, 1u32..128).prop_map(|(cells, max)| ScanArchitecture::Flexible {
                cells,
                max_chains: max
            }),
        ],
        0u32..64,
        0u32..64,
        0u32..8,
        1u32..50,
    )
        .prop_filter_map("core must have stimulus", |(scan, i, o, b, p)| {
            Core::builder("prop")
                .scan(scan)
                .inputs(i)
                .outputs(o)
                .bidirs(b)
                .pattern_count(p)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn elements_are_conserved(core in arb_core(), m in 1u32..64) {
        let d = design_wrapper(&core, m);
        let load: u64 = d.chains().iter().map(ChainLayout::load_len).sum();
        let unload: u64 = d.chains().iter().map(ChainLayout::unload_len).sum();
        prop_assert_eq!(load, core.scan_load_bits());
        prop_assert_eq!(unload, core.scan_unload_bits());
        prop_assert!(d.chain_count() <= m.min(core.max_wrapper_chains()));
    }

    #[test]
    fn scan_in_is_monotone_in_chain_count(core in arb_core()) {
        let mut prev = u64::MAX;
        for m in 1..=16u32 {
            let si = design_wrapper(&core, m).scan_in_length();
            prop_assert!(si <= prev, "m={}: {} > {}", m, si, prev);
            prev = si;
        }
    }

    #[test]
    fn scan_in_is_at_least_the_ideal_balance(core in arb_core(), m in 1u32..32) {
        let d = design_wrapper(&core, m);
        let ideal = core.scan_load_bits().div_ceil(u64::from(d.chain_count().max(1)));
        prop_assert!(d.scan_in_length() >= ideal);
        // Soft cores achieve (near-)ideal balance when the stitch limit
        // does not confine their cells to fewer chains than requested: the
        // largest unit is then a single cell, so the partition is within
        // one of ideal.
        if matches!(core.scan(),
            ScanArchitecture::Flexible { max_chains, .. } if *max_chains >= m)
        {
            prop_assert!(d.scan_in_length() <= ideal + 1);
        }
    }

    #[test]
    fn test_time_formula_holds(core in arb_core(), m in 1u32..32) {
        let d = design_wrapper(&core, m);
        let p = u64::from(core.pattern_count());
        let (si, so) = (d.scan_in_length(), d.scan_out_length());
        prop_assert_eq!(d.test_time(p), (1 + si.max(so)) * p + si.min(so));
    }

    #[test]
    fn slices_tile_the_cube_exactly(core in arb_core(), m in 1u32..24) {
        let d = design_wrapper(&core, m);
        // Fully specified alternating cube; every slice symbol that is a
        // real position must match, pads must be X.
        let cube: TritVec = (0..core.scan_load_bits())
            .map(|i| if i % 2 == 0 { Trit::Zero } else { Trit::One })
            .collect();
        let mut care_seen = 0usize;
        for (depth, slice) in d.slices(&cube).enumerate() {
            prop_assert_eq!(slice.len() as u32, d.chain_count());
            for (k, chain) in d.chains().iter().enumerate() {
                match chain.position_at(depth as u64) {
                    Some(pos) => {
                        prop_assert_eq!(slice.get(k), cube.get(pos as usize));
                        care_seen += 1;
                    }
                    None => prop_assert_eq!(slice.get(k), Trit::X),
                }
            }
        }
        prop_assert_eq!(care_seen as u64, core.scan_load_bits());
    }

    #[test]
    fn pareto_frontier_is_consistent(core in arb_core()) {
        let pts = pareto_points(&core, 24);
        prop_assert!(!pts.is_empty());
        for w in pts.windows(2) {
            prop_assert!(w[0].chains < w[1].chains);
            prop_assert!(w[0].test_time > w[1].test_time);
        }
        // Every frontier point is achievable and correct.
        for p in &pts {
            let d = design_wrapper(&core, p.chains);
            prop_assert_eq!(d.scan_in_length(), p.scan_in);
            prop_assert_eq!(d.scan_out_length(), p.scan_out);
        }
    }
}

mod power_props {
    use super::*;
    use soc_model::CubeSynthesis;
    use wrapper::{weighted_transitions, Fill};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Minimum-transition fill never increases the weighted transition
        /// count, for arbitrary cores, densities, and chain counts.
        #[test]
        fn mt_fill_never_worse(core in arb_core(), m in 1u32..24, seed: u64) {
            let density = core.nominal_care_density().clamp(0.05, 0.9);
            let cubes = CubeSynthesis::new(density).synthesize(&core, seed);
            let design = design_wrapper(&core, m);
            for cube in cubes.iter() {
                let zero = weighted_transitions(&design, cube, Fill::Zero);
                let mt = weighted_transitions(&design, cube, Fill::MinTransition);
                prop_assert!(mt <= zero, "MT {} > zero {}", mt, zero);
            }
        }

        /// WTC is bounded by the theoretical maximum (every cycle a
        /// transition travelling the full remaining depth).
        #[test]
        fn wtc_within_theoretical_bounds(core in arb_core(), m in 1u32..24, seed: u64) {
            let cubes = CubeSynthesis::new(0.5).synthesize(&core, seed);
            let design = design_wrapper(&core, m);
            let s_i = design.scan_in_length();
            let chains = design.chain_count() as u64;
            let max = chains * s_i * (s_i + 1) / 2;
            for cube in cubes.iter().take(3) {
                let w = weighted_transitions(&design, cube, Fill::Zero);
                prop_assert!(w <= max, "WTC {} > max {}", w, max);
            }
        }
    }
}
