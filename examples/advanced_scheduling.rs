//! Advanced scheduling extensions in one scenario: EXTEST-style conflict
//! constraints, multi-frequency TAMs, and the compaction-vs-compression
//! trade-off.
//!
//! Run with `cargo run --release --example advanced_scheduling`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::model::compaction::compact;
use soc_tdc::planner::{CompressionMode, DecisionConfig, DecisionTable};
use soc_tdc::report::group_digits;
use soc_tdc::tam::{
    conflict_schedule, greedy_schedule, optimize_multifreq, validate_multifreq, Conflicts,
    CostModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Design::System1.build_with_cubes(3);
    let cfg = DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    };
    let mut cost = CostModel::new(16);
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, 16, &cfg);
        cost.push_core(core.name(), t.time_row());
    }
    let widths = [8u32, 8];

    // 1. Conflict constraints: cores 0/1 and 2/3 share analog supplies, so
    //    their scan tests may not overlap even across TAMs.
    let free = greedy_schedule(&cost, &widths)?;
    let conflicts = Conflicts::from_pairs(vec![(0, 1), (2, 3)]);
    let constrained = conflict_schedule(&cost, &widths, &conflicts)?;
    conflicts.validate(&constrained)?;
    println!(
        "conflict constraints: tau {} → {} (+{:.1}%)",
        group_digits(free.makespan()),
        group_digits(constrained.makespan()),
        100.0 * (constrained.makespan() as f64 / free.makespan() as f64 - 1.0)
    );

    // 2. Multi-frequency TAMs: the two smallest cores tolerate 4× scan
    //    clocks, the rest 2×.
    let caps: Vec<u32> = soc
        .cores()
        .iter()
        .map(|c| if c.scan_cells() < 15_000 { 4 } else { 2 })
        .collect();
    let (tams, mf) = optimize_multifreq(&cost, 16, &[1, 2, 4], &caps)?;
    validate_multifreq(&mf, &cost, &tams, &caps)?;
    println!(
        "multi-frequency TAMs: tau {} → {} using {:?}",
        group_digits(free.makespan()),
        group_digits(mf.makespan()),
        tams.iter()
            .map(|t| format!("{}w@{}x", t.width, t.freq))
            .collect::<Vec<_>>()
    );

    // 3. Compaction vs compression on one core's cubes.
    let core = &soc.cores()[0];
    let ts = core.test_set().expect("cubes attached");
    let compacted = compact(ts);
    println!(
        "compaction on {}: {} → {} patterns, care density {:.3} → {:.3}",
        core.name(),
        ts.pattern_count(),
        compacted.test_set.pattern_count(),
        ts.care_density(),
        compacted.test_set.care_density()
    );
    println!("(denser cubes compress worse — see the `ablation_compaction` bench)");
    Ok(())
}
