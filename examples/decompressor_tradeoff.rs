//! The decompressor I/O trade-off (the paper's Figs. 2–3 on a single
//! core): test time is non-monotonic in both the number of wrapper chains
//! `m` and the TAM width `w`, so "make it as wide as possible" is the
//! wrong design rule.
//!
//! Run with `cargo run --release --example decompressor_tradeoff`.

#![forbid(unsafe_code)]

use soc_tdc::model::{benchmarks, generator::synthesize_missing_test_sets, Soc};
use soc_tdc::selenc::{evaluate_point, CoreProfile, ProfileConfig, SliceCode};

fn main() {
    let mut soc = Soc::new("tradeoff", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut soc, 2008);
    let core = &soc.cores()[0];

    // Sweep m inside the w = 10 width class and plot tau as a bar sketch.
    println!(
        "tau_c(w=10, m) for {} (each row one m; bars scaled):",
        core.name()
    );
    let mut min = u64::MAX;
    let mut max = 0;
    let mut rows = Vec::new();
    for m in SliceCode::feasible_chains(10).step_by(8) {
        if let Some(c) = evaluate_point(core, m, Some(24)) {
            min = min.min(c.test_time);
            max = max.max(c.test_time);
            rows.push((m, c.test_time));
        }
    }
    for (m, tau) in &rows {
        let span = (max - min).max(1);
        let bar = 10 + ((tau - min) * 50 / span) as usize;
        println!("  m={m:>3} {:>8} {}", tau, "#".repeat(bar));
    }
    println!(
        "  spread: {:.0}% — picking the largest m is suboptimal\n",
        100.0 * (max - min) as f64 / max as f64
    );

    // The per-width profile (Fig. 3): the best width is not the widest.
    let profile = CoreProfile::build(
        core,
        &ProfileConfig::new(13).pattern_sample(24).m_candidates(24),
    );
    println!("best operating point per TAM width:");
    print!("{profile}");
    let best = profile
        .entries()
        .iter()
        .min_by_key(|e| e.test_time)
        .expect("profile has entries");
    println!(
        "→ the planner will request only {} TAM wires for this core, never more.",
        best.tam_width
    );
}
