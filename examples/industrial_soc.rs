//! Industrial-scale planning: the workloads the paper's introduction
//! motivates — cores with tens of thousands of scan cells, gigabit-class
//! test sets, and 1–5% care-bit density.
//!
//! Sweeps the TAM budget for System2 and shows how architecture, test
//! time, and tester memory move, with a tester-fit check.
//!
//! Run with `cargo run --release --example industrial_soc`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{AteSpec, DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::{group_digits, mbits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Design::System2.build_with_cubes(1);
    println!("design: {soc}\n");

    let ate = AteSpec::small();
    let cfg = DecisionConfig {
        pattern_sample: Some(16),
        m_candidates: 12,
    };
    println!(
        "{:>6} {:>5} | {:>13} {:>9} | {:>13} {:>9} | {:>9} {:>12}",
        "W_TAM", "TAMs", "tau_nc", "Vnc(Mb)", "tau_c", "Vc(Mb)", "speedup", "ATE time"
    );
    for w in [8u32, 16, 24, 32, 48, 64] {
        let req = PlanRequest::tam_width(w).with_decisions(cfg.clone());
        let raw = Planner::no_tdc().plan(&soc, &req)?;
        let tdc = Planner::per_core_tdc().plan(&soc, &req)?;
        let fit = ate.fit(&tdc);
        println!(
            "{:>6} {:>5} | {:>13} {:>9} | {:>13} {:>9} | {:>8.1}x {:>9.2} ms{}",
            w,
            tdc.tam_count(),
            group_digits(raw.test_time),
            mbits(raw.volume_bits),
            group_digits(tdc.test_time),
            mbits(tdc.volume_bits),
            raw.test_time as f64 / tdc.test_time as f64,
            fit.test_seconds * 1e3,
            if fit.fits { "" } else { " (!)" }
        );
    }

    // Detail view at one budget: who got which decompressor?
    let plan =
        Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(32).with_decisions(cfg))?;
    println!("\nper-core settings at W_TAM = 32:");
    for s in &plan.core_settings {
        match s.decompressor {
            Some((w, m)) => println!(
                "  {:>7}: TAM{} | decompressor {w:>2}→{m:<4} | tau = {:>11}",
                s.name,
                s.tam,
                group_digits(s.test_time)
            ),
            None => println!("  {:>7}: TAM{} | raw wrapper", s.name, s.tam),
        }
    }
    Ok(())
}
