//! Power-constrained scheduling (extension): scan power often caps how
//! many cores may be tested concurrently. This example plans System1 with
//! per-core decompressors, estimates each core's scan power from its
//! actual cubes (weighted transition counts under zero- vs
//! minimum-transition X-fill), then re-schedules under shrinking
//! peak-power budgets and shows the time/power trade-off.
//!
//! Run with `cargo run --release --example power_budget`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::group_digits;
use soc_tdc::tam::{power_aware_schedule, render_gantt, CostModel, PowerModel};
use soc_tdc::wrapper::{design_wrapper, estimate_scan_power, Fill};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Design::System1.build_with_cubes(11);
    let cfg = DecisionConfig {
        pattern_sample: Some(12),
        m_candidates: 8,
    };
    let plan =
        Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(24).with_decisions(cfg))?;
    println!(
        "unconstrained plan: tau = {} cycles\n",
        group_digits(plan.test_time)
    );

    // Rebuild the cost rows at the chosen TAM widths so the power-aware
    // scheduler can re-place the same operating points.
    let widths = plan.schedule.tam_widths().to_vec();
    let mut cost = CostModel::new(*widths.iter().max().expect("TAMs exist"));
    for s in &plan.core_settings {
        let mut row = vec![None; cost.max_width() as usize];
        for w in s.tam_width..=cost.max_width() {
            row[(w - 1) as usize] = Some(s.test_time);
        }
        cost.push_core(&s.name, row);
    }

    // Estimate per-core scan power from the actual cubes: mean weighted
    // transition count per shift cycle at each core's planned chain count.
    println!("per-core scan power (mean WTC/cycle at the planned wrapper):");
    let mut powers: Vec<u64> = Vec::new();
    for s in &plan.core_settings {
        let core = soc.core(s.core).expect("plan matches SOC");
        let chains = s.decompressor.map_or(s.tam_width, |(_, m)| m);
        let design = design_wrapper(core, chains);
        let ts = core.test_set().expect("cubes attached");
        let zero = estimate_scan_power(&design, ts, Fill::Zero, 8);
        let mt = estimate_scan_power(&design, ts, Fill::MinTransition, 8);
        println!(
            "  {:>7}: zero-fill {:>7.1}, MT-fill {:>7.1} ({:.0}% saved)",
            s.name,
            zero.average,
            mt.average,
            100.0 * (1.0 - mt.average / zero.average)
        );
        powers.push(mt.average.ceil() as u64 + 1);
    }
    let total: u64 = powers.iter().sum();
    println!("using MT-fill powers {powers:?}, total {total}\n");

    for frac in [100u64, 60, 40, 25] {
        let budget = (total * frac / 100).max(*powers.iter().max().expect("cores"));
        let power = PowerModel::new(powers.clone(), budget);
        let schedule = power_aware_schedule(&cost, &widths, &power)?;
        schedule.validate(&cost)?;
        power.validate(&schedule)?;
        println!(
            "budget {budget:>4} ({frac:>3}% of total): tau = {:>10}, peak = {:>4}",
            group_digits(schedule.makespan()),
            power.peak_power(&schedule)
        );
        if frac == 25 {
            println!("\nschedule at the tightest budget:");
            println!("{}", render_gantt(&schedule, &cost, 60));
        }
    }
    Ok(())
}
