//! Caching per-core lookup tables: profile construction is the expensive
//! step of planning (it sweeps the (w, m) surface against real cubes), and
//! the result is a tiny table — so real flows build it once and cache it.
//!
//! Run with `cargo run --release --example profile_cache`.

#![forbid(unsafe_code)]
// Demo timing build-vs-load: reading the wall clock is the point.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use soc_tdc::model::{benchmarks, generator::synthesize_missing_test_sets, Soc};
use soc_tdc::selenc::{CoreProfile, ProfileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut soc = Soc::new("cache-demo", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut soc, 2008);
    let core = &soc.cores()[0];

    // Build once (the expensive part)…
    let t0 = Instant::now();
    let profile = CoreProfile::build(
        core,
        &ProfileConfig::new(12).pattern_sample(24).m_candidates(24),
    );
    let build_time = t0.elapsed();

    // …persist, reload, and answer the same queries.
    let dir = std::env::temp_dir().join("soc-tdc-profiles");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("ckt-7.csv");
    std::fs::write(&path, profile.to_csv())?;

    let t1 = Instant::now();
    let cached = CoreProfile::from_csv("ckt-7", &std::fs::read_to_string(&path)?)
        .map_err(|e| format!("bad cache: {e}"))?;
    let load_time = t1.elapsed();

    assert_eq!(profile, cached);
    println!(
        "profile of {}: built in {:.2?}, reloaded in {:.2?} ({} bytes on disk)",
        core.name(),
        build_time,
        load_time,
        std::fs::metadata(&path)?.len()
    );
    println!("{cached}");
    let best = cached
        .best_at_most(12)
        .expect("ckt-7 is feasible at w <= 12");
    println!(
        "best operating point at <=12 wires: w={} m={} tau={} cycles",
        best.tam_width, best.chains, best.test_time
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
