//! Quickstart: describe an SOC, synthesize test cubes, and plan its test
//! with core-level decompression.
//!
//! Run with `cargo run --release --example quickstart`.

#![forbid(unsafe_code)]

use soc_tdc::model::format::parse_soc;
use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::planner::{PlanRequest, Planner};
use soc_tdc::selenc::{decompressor_area, SliceCode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the SOC — hard cores list their fixed scan chains,
    //    soft cores just their cell count and stitch limit.
    let mut soc = parse_soc(
        "soc quickstart\n\
         core  uart   inputs 24 outputs 16 patterns 60  density 0.40 scan 64 64 48\n\
         core  dsp    inputs 48 outputs 40 patterns 120 density 0.25 scan 128 128 128 128\n\
         flexcore cpu inputs 96 outputs 80 patterns 200 density 0.03 cells 20000 maxchains 512\n",
    )?;

    // 2. Attach test cubes (here: synthesized at each core's care-bit
    //    density; real flows would load ATPG cubes instead).
    synthesize_missing_test_sets(&mut soc, 0xC0FFEE);

    // 3. Plan the SOC test on a 24-wire TAM budget, with and without
    //    core-level expansion of compressed patterns.
    let raw = Planner::no_tdc().plan(&soc, &PlanRequest::tam_width(24))?;
    let tdc = Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(24))?;

    println!("without compression: {raw}");
    println!("with per-core decompressors: {tdc}");
    println!(
        "test-time reduction: {:.1}x, volume reduction: {:.1}x",
        raw.test_time as f64 / tdc.test_time as f64,
        raw.volume_bits as f64 / tdc.volume_bits as f64
    );

    // 4. Inspect the hardware each instantiated decompressor costs.
    for s in &tdc.core_settings {
        if let Some((w, m)) = s.decompressor {
            println!(
                "  {}: decompressor {w}→{m}: {}",
                s.name,
                decompressor_area(SliceCode::for_chains(m))
            );
        } else {
            println!(
                "  {}: raw wrapper access (compression would not pay off)",
                s.name
            );
        }
    }
    Ok(())
}
