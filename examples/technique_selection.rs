//! Per-core compression-technique selection — the direction the authors
//! took next (Larsson, Zhang, Larsson & Chakrabarty, ATS 2008): instead of
//! one compression scheme for the whole SOC, every core independently
//! picks the fastest of {raw access, selective encoding, FDR run-length
//! coding} at its TAM width.
//!
//! The example builds an SOC with deliberately mixed cube statistics so
//! different techniques win on different cores.
//!
//! Run with `cargo run --release --example technique_selection`.

#![forbid(unsafe_code)]

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::{Core, Soc};
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::group_digits;

fn core(name: &str, cells: u32, max_chains: u32, patterns: u32, density: f64) -> Core {
    Core::builder(name)
        .inputs(16)
        .outputs(16)
        .flexible_cells(cells, max_chains)
        .pattern_count(patterns)
        .care_density(density)
        .build()
        .expect("valid core")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut soc = Soc::new(
        "mixed",
        vec![
            // Sparse + many chains: selective encoding territory.
            core("sparse-wide", 6_000, 512, 40, 0.01),
            // Sparse but chain-limited: expansion is capped, FDR's serial
            // decompressors don't care.
            core("sparse-narrow", 6_000, 8, 40, 0.01),
            // Dense cubes: any coder inflates; raw access should win.
            core("dense", 1_500, 64, 30, 0.85),
            // Middle ground.
            core("medium", 3_000, 128, 35, 0.08),
        ],
    );
    synthesize_missing_test_sets(&mut soc, 77);

    let cfg = DecisionConfig {
        pattern_sample: Some(12),
        m_candidates: 12,
    };
    let req = PlanRequest::tam_width(20).with_decisions(cfg);

    println!("single-technique plans at W_TAM = 20:");
    for (label, planner) in [
        ("raw only", Planner::no_tdc()),
        ("selective encoding", Planner::per_core_tdc()),
        ("FDR", Planner::fdr_tdc()),
        ("per-core selection", Planner::select_tdc()),
    ] {
        let plan = planner.plan(&soc, &req)?;
        println!(
            "  {label:>20}: tau = {:>10} cycles, V = {:>10} bits",
            group_digits(plan.test_time),
            group_digits(plan.volume_bits)
        );
    }

    let plan = Planner::select_tdc().plan(&soc, &req)?;
    println!("\nwhat each core picked:");
    for s in &plan.core_settings {
        let detail = match s.decompressor {
            Some((w, m)) => format!("({w}→{m})"),
            None => String::new(),
        };
        println!(
            "  {:>13}: {:<7} {detail:<10} tau = {:>9}, V = {:>9}",
            s.name,
            s.technique.label(),
            group_digits(s.test_time),
            group_digits(s.volume_bits)
        );
    }
    Ok(())
}
