//! Full flow on an ITC'02-format input: parse, plan with per-core
//! decompression, export the exact tester image, and verify it bit by bit
//! through the decompressor model.
//!
//! Run with `cargo run --release --example tester_image`.

#![forbid(unsafe_code)]

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::itc02::parse_itc02;
use soc_tdc::planner::{export_image, verify_image, AteSpec, PlanRequest, Planner};
use soc_tdc::report::{group_digits, ratio};

/// A small SOC in the ITC'02 benchmark format.
const ITC02_TEXT: &str = "\
SocName itc-demo
TotalModules 4

Module 0
  Level 0
  Inputs 0 Outputs 0 Bidirs 0
  TotalTests 0

Module 1
  Level 1
  Inputs 18 Outputs 14
  ScanChains 20 : 24 24 24 24 24 24 24 24 24 24 22 22 22 22 22 22 22 22 22 22
  TotalTests 1
  Test 1:
    TotalPatterns 40

Module 2
  Level 1
  Inputs 40 Outputs 40
  ScanChains 24 : 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 30 28 28 28 28 28 28 28 28
  TotalTests 1
  Test 1:
    TotalPatterns 55

Module 3
  Level 1
  Inputs 26 Outputs 30
  ScanChains 28 : 30 30 30 30 30 30 30 30 30 30 30 30 30 30 28 28 28 28 28 28 28 28 28 28 28 28 28 28
  TotalTests 1
  Test 1:
    TotalPatterns 32
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ITC'02 files carry no care-bit density; pick the sparse industrial
    // regime so compression has something to work with.
    let parsed = parse_itc02(ITC02_TEXT, 0.04)?;
    println!(
        "parsed {} ({} cores, skipped modules {:?})",
        parsed.soc.name(),
        parsed.soc.core_count(),
        parsed.skipped_modules
    );
    let mut soc = parsed.soc;
    synthesize_missing_test_sets(&mut soc, 7);

    // Exact planning, so the exported stream lengths match the schedule.
    let plan = Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(16).exact())?;
    println!("{plan}");

    let image = export_image(&soc, &plan)?;
    println!(
        "tester image: {} TAMs, {} cycles deep, {} bits total",
        image.tams().len(),
        group_digits(image.tams()[0].cycles()),
        group_digits(image.volume_bits())
    );
    println!(
        "raw stimulus would be {} bits → image is {}x smaller",
        group_digits(soc.initial_volume_bits()),
        ratio(soc.initial_volume_bits(), image.volume_bits()),
    );

    verify_image(&image, &soc, &plan)?;
    println!("image verified: every care bit of every cube is honored ✓");

    let fit = AteSpec::small().fit(&plan);
    println!("on a small 50 MHz tester: {fit}");
    Ok(())
}
