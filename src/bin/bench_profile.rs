//! Machine-readable profile-build benchmark: the planner's dominant cost
//! is tabulating per-core operating points, so this binary times exactly
//! that path (kernel → profile → decision tables → full plan) on the
//! bundled benchmarks, plus the architecture-search portfolio that
//! consumes the resulting cost models, and emits a JSON report for
//! `BENCH_profile.json`.
//!
//! Usage:
//!
//! ```text
//! bench_profile [--label NAME] [--out FILE] [--smoke] [--workers N]
//! ```
//!
//! `--smoke` runs a seconds-scale subset (used by CI to catch kernel
//! regressions); the default set covers the largest bundled SOC
//! (p93791-class, ≈98k scan flip-flops) and takes minutes on a cold
//! machine. `--workers` sets the worker-thread count for the
//! pool-dispatched workloads (architecture search, anneal portfolio,
//! full plan); results are identical at any value, only the wall clock
//! moves, and every JSON entry records the count it ran with.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use soc_tdc::model::benchmarks::{self, Design};
use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::Soc;
use soc_tdc::planner::{CompressionMode, DecisionConfig, DecisionTable, PlanRequest, Planner};
use soc_tdc::selenc::{cube_cost, CoreProfile, ProfileConfig, SliceCode};
use soc_tdc::tam::{
    anneal_architecture, optimize_architecture, AnnealOptions, ArchitectureOptions, CostModel,
};
use soc_tdc::wrapper::design_wrapper;

const SEED: u64 = 2008;

struct Entry {
    name: &'static str,
    millis: f64,
    iters: u32,
    workers: usize,
}

fn timed<F: FnMut()>(name: &'static str, iters: u32, workers: usize, mut f: F) -> Entry {
    // One warm-up pass so lazily synthesized cubes and allocator warm-up
    // don't pollute the first measurement.
    f();
    // Measurement harness: timing the workload is the whole point here.
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let millis = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    eprintln!("  {name}: {millis:.1} ms");
    Entry {
        name,
        millis,
        iters,
        workers,
    }
}

fn fast() -> DecisionConfig {
    DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    }
}

fn build_tables(soc: &Soc, width: u32, cfg: &DecisionConfig) {
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, width, cfg);
        assert!(t.max_width() == width);
    }
}

/// The cost model the architecture-search entries run on (same tables the
/// planner would build).
fn cost_model(soc: &Soc, width: u32) -> CostModel {
    let cfg = fast();
    let mut cost = CostModel::new(width);
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, width, &cfg);
        cost.push_core(core.name(), t.time_row());
    }
    cost
}

/// Nearest ancestor directory holding a `[workspace]` manifest — the
/// tree the soclint entries scan.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "bench_profile must run inside the workspace");
    }
}

fn main() {
    let mut label = String::from("run");
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut workers = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--smoke" => smoke = true,
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .expect("--workers needs a number");
                assert!(workers >= 1, "--workers needs at least 1");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut entries: Vec<Entry> = Vec::new();

    // Kernel: slice-cost evaluation of a full industrial test set at a
    // wide decompressor (the inner loop of every profile build).
    let mut ckt7 = Soc::new("bench", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut ckt7, SEED);
    let core7 = &ckt7.cores()[0];
    let ts = core7.test_set().expect("cubes attached");
    for m in [64u32, 256] {
        let design = design_wrapper(core7, m);
        let code = SliceCode::for_chains(design.chain_count());
        let name: &'static str = if m == 64 {
            "cube_cost_ckt7_m64"
        } else {
            "cube_cost_ckt7_m256"
        };
        entries.push(timed(name, if smoke { 1 } else { 3 }, 1, || {
            let total: u64 = ts.iter().map(|c| cube_cost(code, &design, c)).sum();
            assert!(total > 0);
        }));
    }

    // Profile build of one industrial core at production fidelity.
    entries.push(timed("profile_ckt7_w16", 1, 1, || {
        let p = CoreProfile::build(core7, &ProfileConfig::industrial(16));
        assert!(!p.entries().is_empty());
    }));

    // Decision tables over a whole SOC (the planner's table phase).
    let d695 = Design::D695.build_with_cubes(SEED);
    entries.push(timed("tables_d695_w32", 1, 1, || {
        build_tables(&d695, 32, &fast());
    }));

    // Lint self-benchmark: the full workspace scan (lex + parse + all
    // rule families on every file), sequential and pooled, so lint cost
    // is tracked in BENCH_profile.json like the planner kernels.
    let lint_root = workspace_root();
    let lint_iters = if smoke { 1 } else { 3 };
    entries.push(timed("soclint_workspace_w1", lint_iters, 1, || {
        let diags = soclint::lint_workspace_with(&lint_root, 1).expect("workspace scan");
        assert!(diags.is_empty(), "workspace must lint clean: {diags:?}");
    }));
    let lint_workers = workers.max(2);
    entries.push(timed(
        "soclint_workspace_par",
        lint_iters,
        lint_workers,
        || {
            let diags =
                soclint::lint_workspace_with(&lint_root, lint_workers).expect("workspace scan");
            assert!(diags.is_empty(), "workspace must lint clean: {diags:?}");
        },
    ));

    // Architecture search: the pruned hill-climb portfolio and the
    // multi-chain anneal over the d695 cost model.
    let cost_d695 = cost_model(&d695, 32);
    entries.push(timed("arch_d695_w32", 3, workers, || {
        let opts = ArchitectureOptions {
            workers: Some(workers),
            ..Default::default()
        };
        let a = optimize_architecture(&cost_d695, 32, &opts).unwrap();
        assert!(a.test_time > 0);
    }));
    entries.push(timed("anneal_d695_w32", 3, workers, || {
        let opts = AnnealOptions {
            chains: 4,
            workers: Some(workers),
            ..Default::default()
        };
        let a = anneal_architecture(&cost_d695, 32, &opts).unwrap();
        assert!(a.test_time > 0);
    }));

    if !smoke {
        // The largest bundled SOC: p93791-class, 32 cores, ~98k scan FFs.
        let p93791 = Design::P93791.build_with_cubes(SEED);
        entries.push(timed("tables_p93791_w24", 1, 1, || {
            build_tables(&p93791, 24, &fast());
        }));
        entries.push(timed("tables_p93791_w32_default", 1, 1, || {
            build_tables(&p93791, 32, &DecisionConfig::default());
        }));

        // Anneal portfolio on the big SOC's cost model (the dominant
        // architecture-search workload).
        let cost_p = cost_model(&p93791, 32);
        entries.push(timed("anneal_p93791_w32", 3, workers, || {
            let opts = AnnealOptions {
                iterations: 4000,
                chains: 4,
                workers: Some(workers),
                ..Default::default()
            };
            let a = anneal_architecture(&cost_p, 32, &opts).unwrap();
            assert!(a.test_time > 0);
        }));

        // End-to-end plan on the industrial System1.
        let system1 = Design::System1.build_with_cubes(SEED);
        entries.push(timed("plan_system1_w32", 1, workers, || {
            let req = PlanRequest {
                architecture: ArchitectureOptions {
                    workers: Some(workers),
                    ..Default::default()
                },
                ..PlanRequest::tam_width(32).with_decisions(fast())
            };
            let plan = Planner::per_core_tdc().plan(&system1, &req).unwrap();
            assert!(plan.test_time > 0);
        }));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"profile-fastpath\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"millis\": {:.1}, \"iters\": {}, \"workers\": {} }}{comma}",
            e.name, e.millis, e.iters, e.workers
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    match out {
        Some(path) => std::fs::write(&path, &json).expect("write report"),
        None => print!("{json}"),
    }
}
