//! Machine-readable profile-build benchmark: the planner's dominant cost
//! is tabulating per-core operating points, so this binary times exactly
//! that path (kernel → profile → decision tables → full plan) on the
//! bundled benchmarks, plus the architecture-search portfolio that
//! consumes the resulting cost models, the batched stream verifier, and
//! the incremental (profile-cache) rebuild path, and emits a JSON report
//! for `BENCH_profile.json`.
//!
//! Usage:
//!
//! ```text
//! bench_profile [--label NAME] [--out FILE] [--smoke] [--workers N]
//!               [--iters N] [--check BASELINE]
//! ```
//!
//! `--smoke` runs a seconds-scale subset (used by CI to catch kernel
//! regressions); the default set covers the largest bundled SOC
//! (p93791-class, ≈98k scan flip-flops) and takes minutes on a cold
//! machine. `--workers` sets the worker-thread count for the
//! pool-dispatched workloads (architecture search, anneal portfolio,
//! full plan); results are identical at any value, only the wall clock
//! moves, and every JSON entry records the count it ran with.
//!
//! `--iters N` re-times entries whose first measurement lands under
//! 100 ms individually N times and reports the minimum — short entries
//! are the ones scheduler noise distorts, and min-of-N is the standard
//! noise-robust statistic for them. Longer entries keep their averaged
//! measurement.
//!
//! `--check BASELINE` compares this run's
//! `tables_*`/`plan_*`/`fleet_*`/`soclint_*`/`dsan_*` entries against the
//! most
//! recent run in a committed
//! `BENCH_profile.json` that records the same entry, and exits non-zero
//! when any is more than 20% worse — the CI perf-regression gate. Each
//! entry carries its comparison direction explicitly: time entries
//! (`"millis"`, `"direction": "lower"`) fail when slower, throughput
//! entries (`"designs_per_sec"`, `"direction": "higher"`) fail when
//! fewer designs per second come out. Entries without a baseline are
//! reported and skipped, so newly added benchmarks don't block the gate
//! before their first committed run.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use soc_tdc::fleet;
use soc_tdc::model::benchmarks::{self, Design};
use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::Soc;
use soc_tdc::planner::{
    CompressionMode, DecisionConfig, DecisionTable, PlanControl, PlanRequest, Planner,
};
use soc_tdc::selenc::{
    cube_cost, encode_cube, verify_stream, verify_test_set_stream, CoreProfile, Encoder,
    ProfileConfig, SliceCode,
};
use soc_tdc::tam::{
    anneal_architecture, optimize_architecture, AnnealOptions, ArchitectureOptions, CostModel,
};
use soc_tdc::wrapper::design_wrapper;

const SEED: u64 = 2008;

/// Regression threshold for `--check`: fail when an entry is more than
/// this factor slower than its committed baseline.
const CHECK_TOLERANCE: f64 = 1.20;

/// Which way an entry's number is supposed to move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    /// Time-like entries: smaller is better.
    Lower,
    /// Throughput entries: bigger is better.
    Higher,
}

impl Direction {
    fn keyword(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    /// Normalized "how much worse" ratio: `> 1.0` means this run regressed
    /// relative to `base`, whichever way the metric points.
    fn regression_ratio(self, value: f64, base: f64) -> f64 {
        match self {
            Direction::Lower => value / base,
            Direction::Higher => base / value,
        }
    }
}

struct Entry {
    name: &'static str,
    /// Measured value in `unit`s.
    value: f64,
    /// JSON key the value is emitted under (`millis`, `designs_per_sec`).
    unit: &'static str,
    direction: Direction,
    iters: u32,
    workers: usize,
}

fn timed<F: FnMut()>(
    name: &'static str,
    iters: u32,
    workers: usize,
    min_of: Option<u32>,
    mut f: F,
) -> Entry {
    // One warm-up pass so lazily synthesized cubes and allocator warm-up
    // don't pollute the first measurement.
    f();
    // Measurement harness: timing the workload is the whole point here.
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mut millis = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    let mut reported_iters = iters;
    // Short entries are dominated by scheduler noise; re-time them
    // individually and keep the minimum (the least-disturbed observation).
    // Eligibility is decided on the best observation so far, probed with
    // one extra pass — a single scheduler stall during the batched loop
    // must not disqualify a short entry from exactly the re-timing that
    // would absorb it.
    if let Some(n) = min_of.filter(|&n| n > 1) {
        #[allow(clippy::disallowed_methods)]
        let t = Instant::now();
        f();
        millis = millis.min(t.elapsed().as_secs_f64() * 1e3);
        if millis < 100.0 {
            for _ in 1..n {
                #[allow(clippy::disallowed_methods)]
                let t = Instant::now();
                f();
                millis = millis.min(t.elapsed().as_secs_f64() * 1e3);
            }
            reported_iters = n;
        }
    }
    eprintln!("  {name}: {millis:.1} ms");
    Entry {
        name,
        value: millis,
        unit: "millis",
        direction: Direction::Lower,
        iters: reported_iters,
        workers,
    }
}

/// Times one fleet batch run and reports its throughput (a
/// higher-is-better entry). One warm-up pass, then the measured run; the
/// summary's own elapsed clock is the measurement.
fn fleet_entry(name: &'static str, manifest_text: &str, workers: usize) -> Entry {
    let manifest = fleet::Manifest::parse(manifest_text).expect("fleet manifest");
    let opts = fleet::FleetOptions {
        workers,
        skip_stream_verification: true,
        ..Default::default()
    };
    let _ = fleet::run_fleet(&manifest, &opts);
    let report = fleet::run_fleet(&manifest, &opts);
    assert_eq!(report.summary.failed, 0, "fleet bench manifest must plan");
    eprintln!(
        "  {name}: {:.2} designs/sec ({} outer x {} inner)",
        report.summary.designs_per_sec, report.summary.outer_workers, report.summary.inner_workers
    );
    Entry {
        name,
        value: report.summary.designs_per_sec,
        unit: "designs_per_sec",
        direction: Direction::Higher,
        iters: 1,
        workers,
    }
}

fn fast() -> DecisionConfig {
    DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    }
}

fn build_tables(soc: &Soc, width: u32, cfg: &DecisionConfig) {
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, width, cfg);
        assert!(t.max_width() == width);
    }
}

/// The cost model the architecture-search entries run on (same tables the
/// planner would build).
fn cost_model(soc: &Soc, width: u32) -> CostModel {
    let cfg = fast();
    let mut cost = CostModel::new(width);
    for core in soc.cores() {
        let t = DecisionTable::build(core, CompressionMode::PerCore, width, &cfg);
        cost.push_core(core.name(), t.time_row());
    }
    cost
}

/// Stream-verifies every core of `soc` at `m = min(64, max chains)` with
/// the scalar oracle: encode each cube, decode it with the reference
/// [`Decompressor`](soc_tdc::selenc::Decompressor), compare slice by
/// slice against materialized `TritVec` slices.
fn verify_soc_scalar(soc: &Soc) -> u64 {
    let mut total = 0u64;
    for core in soc.cores() {
        let m = 64.min(core.max_wrapper_chains());
        let design = design_wrapper(core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let encoder = Encoder::new(code);
        for cube in core.test_set().expect("cubes attached").iter() {
            let words = encode_cube(&encoder, &design, cube);
            total += words.len() as u64;
            let expected: Vec<_> = design.slices(cube).collect();
            verify_stream(code, words, &expected).expect("stream verifies");
        }
    }
    total
}

/// The same verification through the batched bit-parallel emulator.
fn verify_soc_packed(soc: &Soc) -> u64 {
    let mut total = 0u64;
    for core in soc.cores() {
        let m = 64.min(core.max_wrapper_chains());
        let design = design_wrapper(core, m);
        let report = verify_test_set_stream(&design, core.test_set().expect("cubes attached"))
            .expect("stream verifies");
        total += report.codewords;
    }
    total
}

/// Nearest ancestor directory holding a `[workspace]` manifest — the
/// tree the soclint entries scan.
fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "bench_profile must run inside the workspace");
    }
}

/// One committed measurement recovered from `BENCH_profile.json`.
struct BaselineEntry {
    name: String,
    value: f64,
    direction: Direction,
}

/// Pulls the quoted string value of `key` out of a JSON-ish line.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)?;
    line[at + key.len()..].split('"').nth(1).map(str::to_string)
}

/// Pulls the numeric value of `key` out of a JSON-ish line.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)?;
    let rest = line[at + key.len()..]
        .trim_start_matches([':', ' '])
        .trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Extracts named measurements with their comparison direction from a
/// `BENCH_profile.json` in file order. Line-oriented on purpose: it
/// accepts both the committed multi-run layout (fields on separate lines)
/// and this binary's one-line entry output, without a JSON parser
/// dependency. The direction comes from an explicit `"direction"` key
/// when present, else from the value key itself (`"millis"` entries
/// predate the key and are all lower-is-better).
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let mut entries = Vec::new();
    let mut name: Option<String> = None;
    let mut value: Option<(f64, Direction)> = None;
    let mut explicit: Option<Direction> = None;
    let mut flush = |name: &mut Option<String>,
                     value: &mut Option<(f64, Direction)>,
                     explicit: &mut Option<Direction>| {
        if let (Some(name), Some((value, implied))) = (name.take(), value.take()) {
            entries.push(BaselineEntry {
                name,
                value,
                direction: explicit.take().unwrap_or(implied),
            });
        }
        *explicit = None;
    };
    for line in text.lines() {
        if let Some(n) = extract_str(line, "\"name\"") {
            flush(&mut name, &mut value, &mut explicit);
            name = Some(n);
        }
        if let Some(v) = extract_num(line, "\"millis\"") {
            value = Some((v, Direction::Lower));
        }
        if let Some(v) = extract_num(line, "\"designs_per_sec\"") {
            value = Some((v, Direction::Higher));
        }
        match extract_str(line, "\"direction\"").as_deref() {
            Some("lower") => explicit = Some(Direction::Lower),
            Some("higher") => explicit = Some(Direction::Higher),
            _ => {}
        }
    }
    flush(&mut name, &mut value, &mut explicit);
    entries
}

/// The perf-regression gate behind `--check`: compares this run's
/// `tables_*`/`plan_*`/`fleet_*`/`soclint_*` entries against the
/// *latest* committed
/// run that records the same entry name, each in its own direction.
/// Returns the failure messages (empty = gate passes).
fn check_regressions(entries: &[Entry], baseline_text: &str) -> Vec<String> {
    let baseline = parse_baseline(baseline_text);
    let mut failures = Vec::new();
    for e in entries {
        let gated = e.name.starts_with("tables_")
            || e.name.starts_with("plan_")
            || e.name.starts_with("fleet_")
            || e.name.starts_with("soclint_")
            || e.name.starts_with("dsan_");
        if !gated {
            continue;
        }
        let Some(base) = baseline.iter().rev().find(|b| b.name == e.name) else {
            eprintln!("  check: {} has no committed baseline, skipping", e.name);
            continue;
        };
        if base.direction != e.direction {
            eprintln!(
                "  check: {} baseline recorded direction {:?}, this build says {:?}; using this build's",
                e.name, base.direction, e.direction
            );
        }
        let ratio = e.direction.regression_ratio(e.value, base.value);
        if ratio > CHECK_TOLERANCE {
            failures.push(format!(
                "{}: {:.2} {} vs baseline {:.2} ({:.0}% worse, {} is better)",
                e.name,
                e.value,
                e.unit,
                base.value,
                (ratio - 1.0) * 100.0,
                e.direction.keyword()
            ));
        } else {
            eprintln!(
                "  check: {} {:.2} {} vs baseline {:.2} ok",
                e.name, e.value, e.unit, base.value
            );
        }
    }
    failures
}

fn main() {
    let mut label = String::from("run");
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut workers = 1usize;
    let mut min_of: Option<u32> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--smoke" => smoke = true,
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers needs a value")
                    .parse()
                    .expect("--workers needs a number");
                assert!(workers >= 1, "--workers needs at least 1");
            }
            "--iters" => {
                let n: u32 = args
                    .next()
                    .expect("--iters needs a value")
                    .parse()
                    .expect("--iters needs a number");
                assert!(n >= 1, "--iters needs at least 1");
                min_of = Some(n);
            }
            "--check" => check = Some(args.next().expect("--check needs a baseline file")),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut entries: Vec<Entry> = Vec::new();

    // Kernel: slice-cost evaluation of a full industrial test set at a
    // wide decompressor (the inner loop of every profile build).
    let mut ckt7 = Soc::new("bench", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut ckt7, SEED);
    let core7 = &ckt7.cores()[0];
    let ts = core7.test_set().expect("cubes attached");
    for m in [64u32, 256] {
        let design = design_wrapper(core7, m);
        let code = SliceCode::for_chains(design.chain_count());
        let name: &'static str = if m == 64 {
            "cube_cost_ckt7_m64"
        } else {
            "cube_cost_ckt7_m256"
        };
        entries.push(timed(name, if smoke { 1 } else { 3 }, 1, min_of, || {
            let total: u64 = ts.iter().map(|c| cube_cost(code, &design, c)).sum();
            assert!(total > 0);
        }));
    }

    // Profile build of one industrial core at production fidelity.
    entries.push(timed("profile_ckt7_w16", 1, 1, min_of, || {
        let p = CoreProfile::build(core7, &ProfileConfig::industrial(16));
        assert!(!p.entries().is_empty());
    }));

    // Decision tables over a whole SOC (the planner's table phase).
    let d695 = Design::D695.build_with_cubes(SEED);
    entries.push(timed("tables_d695_w32", 1, 1, min_of, || {
        build_tables(&d695, 32, &fast());
    }));

    // Batched stream verification at smoke scale: the whole d695 test set
    // replayed through the bit-parallel emulator.
    entries.push(timed("verify_d695_packed", 1, 1, min_of, || {
        assert!(verify_soc_packed(&d695) > 0);
    }));

    // Lint self-benchmark: the full workspace scan (lex + parse + all
    // rule families on every file), sequential and pooled, so lint cost
    // is tracked in BENCH_profile.json like the planner kernels.
    let lint_root = workspace_root();
    let lint_iters = if smoke { 1 } else { 3 };
    entries.push(timed("soclint_workspace_w1", lint_iters, 1, min_of, || {
        let diags = soclint::lint_workspace_with(&lint_root, 1).expect("workspace scan");
        assert!(diags.is_empty(), "workspace must lint clean: {diags:?}");
    }));
    let lint_workers = workers.max(2);
    entries.push(timed(
        "soclint_workspace_par",
        lint_iters,
        lint_workers,
        min_of,
        || {
            let diags =
                soclint::lint_workspace_with(&lint_root, lint_workers).expect("workspace scan");
            assert!(diags.is_empty(), "workspace must lint clean: {diags:?}");
        },
    ));

    // Incremental lint: the same scan through the fingerprint-keyed lint
    // cache, cold (empty cache, every file analyzed and stored) versus
    // warm (every file a hit; only the cross-file graph phase re-runs).
    // The cold/warm ratio is the cache's reason to exist, gated like the
    // profile cache's incr entries.
    let lint_cache = std::env::temp_dir().join("bench-profile-lint-cache");
    let _ = std::fs::remove_dir_all(&lint_cache);
    let lint_opts = soclint::LintOptions {
        workers: 1,
        cache_dir: Some(lint_cache.clone()),
    };
    entries.push(timed(
        "soclint_workspace_cold",
        lint_iters,
        1,
        min_of,
        || {
            let _ = std::fs::remove_dir_all(&lint_cache);
            let report =
                soclint::lint_workspace_report(&lint_root, &lint_opts).expect("workspace scan");
            assert!(report.diags.is_empty(), "workspace must lint clean");
            assert_eq!(report.cache_hits, 0, "cold runs start empty");
        },
    ));
    // The cold closure's final run left the cache fully populated.
    entries.push(timed(
        "soclint_workspace_warm",
        lint_iters,
        1,
        min_of,
        || {
            let report =
                soclint::lint_workspace_report(&lint_root, &lint_opts).expect("workspace scan");
            assert!(report.diags.is_empty(), "workspace must lint clean");
            assert_eq!(report.reanalyzed, 0, "warm runs are all hits");
        },
    ));
    let _ = std::fs::remove_dir_all(&lint_cache);

    // Architecture search: the pruned hill-climb portfolio and the
    // multi-chain anneal over the d695 cost model.
    let cost_d695 = cost_model(&d695, 32);
    entries.push(timed("arch_d695_w32", 3, workers, min_of, || {
        let opts = ArchitectureOptions {
            workers: Some(workers),
            ..Default::default()
        };
        let a = optimize_architecture(&cost_d695, 32, &opts).unwrap();
        assert!(a.test_time > 0);
    }));
    entries.push(timed("anneal_d695_w32", 3, workers, min_of, || {
        let opts = AnnealOptions {
            chains: 4,
            workers: Some(workers),
            ..Default::default()
        };
        let a = anneal_architecture(&cost_d695, 32, &opts).unwrap();
        assert!(a.test_time > 0);
    }));

    if !smoke {
        // The largest bundled SOC: p93791-class, 32 cores, ~98k scan FFs.
        let p93791 = Design::P93791.build_with_cubes(SEED);
        entries.push(timed("tables_p93791_w24", 1, 1, min_of, || {
            build_tables(&p93791, 24, &fast());
        }));
        entries.push(timed("tables_p93791_w32_default", 1, 1, min_of, || {
            build_tables(&p93791, 32, &DecisionConfig::default());
        }));

        // Full-stream verification of every p93791 core, scalar oracle vs
        // batched emulator — the emulator's reason to exist is this ratio.
        entries.push(timed("verify_p93791_scalar", 1, 1, min_of, || {
            assert!(verify_soc_scalar(&p93791) > 0);
        }));
        entries.push(timed("verify_p93791_packed", 1, 1, min_of, || {
            assert!(verify_soc_packed(&p93791) > 0);
        }));

        // Incremental rebuild: a full plan at default fidelity with the
        // on-disk profile cache, cold (every core rebuilt and written)
        // versus warm after a single-core edit (one cache entry dirtied —
        // removing it is exactly what a content change does to the
        // fingerprint-keyed key). Stream verification is skipped so both
        // entries time the table/search path the cache accelerates.
        let cache_root = std::env::temp_dir().join("bench-profile-incr-cache");
        let _ = std::fs::remove_dir_all(&cache_root);
        let planner = Planner::per_core_tdc();
        let req = PlanRequest::tam_width(32);
        let control = PlanControl::default()
            .cache_profiles_in(&cache_root, "bench")
            .without_stream_verification();
        entries.push(timed("tables_p93791_w32_incr_cold", 1, 1, min_of, || {
            let _ = std::fs::remove_dir_all(&cache_root);
            let plan = planner.plan_with(&p93791, &req, &control).unwrap();
            assert!(plan.test_time > 0);
        }));
        // The cold closure's final run left the cache fully populated.
        entries.push(timed("tables_p93791_w32_incr_warm", 1, 1, min_of, || {
            let files = soc_tdc::planner::profile_cache_entries(&cache_root);
            assert!(!files.is_empty(), "cache populated");
            std::fs::remove_file(&files[0]).expect("dirty one core");
            let plan = planner.plan_with(&p93791, &req, &control).unwrap();
            assert!(plan.test_time > 0);
        }));
        let _ = std::fs::remove_dir_all(&cache_root);

        // Anneal portfolio on the big SOC's cost model (the dominant
        // architecture-search workload).
        let cost_p = cost_model(&p93791, 32);
        entries.push(timed("anneal_p93791_w32", 3, workers, min_of, || {
            let opts = AnnealOptions {
                iterations: 4000,
                chains: 4,
                workers: Some(workers),
                ..Default::default()
            };
            let a = anneal_architecture(&cost_p, 32, &opts).unwrap();
            assert!(a.test_time > 0);
        }));

        // End-to-end plan on the industrial System1 (includes the default
        // plan-time stream verification, like any production plan).
        let system1 = Design::System1.build_with_cubes(SEED);
        entries.push(timed("plan_system1_w32", 1, workers, min_of, || {
            let req = PlanRequest {
                architecture: ArchitectureOptions {
                    workers: Some(workers),
                    ..Default::default()
                },
                ..PlanRequest::tam_width(32).with_decisions(fast())
            };
            let plan = Planner::per_core_tdc().plan(&system1, &req).unwrap();
            assert!(plan.test_time > 0);
        }));
    }

    // Determinism-sanitizer disabled-mode overhead: a pool-edge-heavy
    // workload (many runs of small jobs) with dsan explicitly off. When
    // disabled, every instrumented edge must cost one atomic load — this
    // check-gated entry fails `--check` if that zero-cost contract rots.
    parpool::dsan::set_enabled(false);
    entries.push(timed(
        "dsan_overhead_disabled",
        if smoke { 1 } else { 3 },
        2,
        min_of,
        || {
            let pool = parpool::Pool::with_workers(2).labeled("bench-dsan");
            let mut total = 0u64;
            for round in 0..64u64 {
                let tasks: Vec<_> = (0..8u64).map(|i| move || (round + 1) * (i + 1)).collect();
                total += pool.run(tasks).into_iter().sum::<u64>();
            }
            assert!(total > 0);
        },
    ));

    // Fleet batch throughput (higher-is-better entries): the same width ×
    // seed sweep at a 1-worker and a 4-worker budget, so the committed
    // baseline records how batching scales on the measurement host.
    if smoke {
        entries.push(fleet_entry(
            "fleet_smoke_w2",
            "design d695 widths=10,12 sample=4 mcand=4\n",
            2,
        ));
    } else {
        const FLEET_SWEEP: &str = "design d695 widths=8..19 seeds=2008,2009 sample=8 mcand=8\n";
        entries.push(fleet_entry("fleet_sweep_w1", FLEET_SWEEP, 1));
        entries.push(fleet_entry("fleet_sweep_w4", FLEET_SWEEP, 4));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"profile-fastpath\",");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"{}\": {:.2}, \"direction\": \"{}\", \"iters\": {}, \"workers\": {} }}{comma}",
            e.name,
            e.unit,
            e.value,
            e.direction.keyword(),
            e.iters,
            e.workers
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    match out {
        Some(path) => std::fs::write(&path, &json).expect("write report"),
        None => print!("{json}"),
    }

    if let Some(path) = check {
        let baseline = std::fs::read_to_string(&path).expect("read --check baseline");
        let failures = check_regressions(&entries, &baseline);
        if !failures.is_empty() {
            eprintln!("performance regression (>20% over committed baseline):");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("perf check passed against {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = "\
        { \"name\": \"tables_x\", \"millis\": 100.0, \"iters\": 1, \"workers\": 1 },\n\
        { \"name\": \"fleet_y\", \"designs_per_sec\": 10.00, \"direction\": \"higher\", \"iters\": 1, \"workers\": 4 },\n\
        { \"name\": \"tables_x\", \"millis\": 50.0, \"iters\": 1, \"workers\": 1 }\n";

    fn entry(name: &'static str, value: f64, unit: &'static str, direction: Direction) -> Entry {
        Entry {
            name,
            value,
            unit,
            direction,
            iters: 1,
            workers: 1,
        }
    }

    #[test]
    fn baseline_parsing_reads_both_units_and_directions() {
        let parsed = parse_baseline(BASELINE);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].name, "tables_x");
        assert_eq!(parsed[0].value, 100.0);
        assert_eq!(
            parsed[0].direction,
            Direction::Lower,
            "millis implies lower"
        );
        assert_eq!(parsed[1].name, "fleet_y");
        assert_eq!(parsed[1].value, 10.0);
        assert_eq!(parsed[1].direction, Direction::Higher);
        assert_eq!(parsed[2].value, 50.0, "later runs appear later");
    }

    #[test]
    fn multiline_baseline_layout_parses_too() {
        let text = "{\n  \"name\": \"plan_z\",\n  \"millis\": 7.5,\n  \"iters\": 1\n}";
        let parsed = parse_baseline(text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "plan_z");
        assert_eq!(parsed[0].value, 7.5);
        assert_eq!(parsed[0].direction, Direction::Lower);
    }

    #[test]
    fn check_compares_against_latest_run_in_each_direction() {
        // Time entry: compared against the *latest* 50 ms, not the stale 100.
        let ok = entry("tables_x", 55.0, "millis", Direction::Lower);
        assert!(check_regressions(&[ok], BASELINE).is_empty());
        let slow = entry("tables_x", 70.0, "millis", Direction::Lower);
        assert_eq!(check_regressions(&[slow], BASELINE).len(), 1);

        // Throughput entry: *fewer* designs/sec is the regression.
        let ok = entry("fleet_y", 9.0, "designs_per_sec", Direction::Higher);
        assert!(check_regressions(&[ok], BASELINE).is_empty());
        let faster = entry("fleet_y", 20.0, "designs_per_sec", Direction::Higher);
        assert!(check_regressions(&[faster], BASELINE).is_empty());
        let slow = entry("fleet_y", 5.0, "designs_per_sec", Direction::Higher);
        let failures = check_regressions(&[slow], BASELINE);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("higher is better"), "{failures:?}");

        // Ungated and baseline-less entries never fail the gate.
        let ungated = entry("cube_cost_q", 9e9, "millis", Direction::Lower);
        let unknown = entry("fleet_new", 0.01, "designs_per_sec", Direction::Higher);
        assert!(check_regressions(&[ungated, unknown], BASELINE).is_empty());
    }
}
