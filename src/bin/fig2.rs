//! Figure 2 — non-monotonic variation of test time with the number of
//! wrapper chains at a fixed TAM width (w = 10) for core ckt-7.
//!
//! Regenerate with `cargo run --release --bin fig2`.

#![forbid(unsafe_code)]

use soc_tdc::model::{benchmarks, generator::synthesize_missing_test_sets, Soc};
use soc_tdc::report::group_digits;
use soc_tdc::selenc::{decompressor_area, evaluate_point, SliceCode};

fn main() {
    let mut soc = Soc::new("fig2", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut soc, 2008);
    let core = &soc.cores()[0];
    println!(
        "# Figure 2: test time vs wrapper chains for {} at TAM width 10",
        core.name()
    );
    println!(
        "# ({} scan cells, {} patterns, care density {:.2}%)",
        group_digits(core.scan_cells()),
        core.pattern_count(),
        100.0 * core.care_density()
    );
    println!("{:>5} {:>12} {:>14}", "m", "tau (cyc)", "volume (bits)");

    let range = SliceCode::feasible_chains(10);
    let mut points = Vec::new();
    for m in range {
        if let Some(c) = evaluate_point(core, m, Some(48)) {
            println!("{m:>5} {:>12} {:>14}", c.test_time, c.volume_bits);
            points.push((m, c.test_time));
        }
    }

    let &(m_min, tau_min) = points.iter().min_by_key(|p| p.1).expect("nonempty sweep");
    let &(m_max, tau_max) = points.iter().max_by_key(|p| p.1).expect("nonempty sweep");
    let &(m_last, tau_last) = points.last().expect("nonempty sweep");
    let direction_changes = points
        .windows(3)
        .filter(|w| (w[1].1 > w[0].1) != (w[2].1 > w[1].1))
        .count();

    println!();
    println!("tau_min = {} at m = {m_min}", group_digits(tau_min));
    println!("tau_max = {} at m = {m_max}", group_digits(tau_max));
    println!(
        "(tau_max - tau_min) / tau_max = {:.0}%   [paper: 31%]",
        100.0 * (tau_max - tau_min) as f64 / tau_max as f64
    );
    println!(
        "max-chains policy (m = {m_last}): tau = {} — {} than the optimum",
        group_digits(tau_last),
        if tau_last > tau_min {
            "worse"
        } else {
            "no worse"
        }
    );
    println!("direction changes along the sweep: {direction_changes} (non-monotonic)");
    println!(
        "decompressor hardware at (w=10, m={m_min}): {}",
        decompressor_area(SliceCode::for_chains(m_min))
    );
}
