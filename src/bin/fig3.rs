//! Figure 3 — lowest test time at various TAM widths for core ckt-7;
//! the curve is *not* monotonically decreasing in the TAM width.
//!
//! Regenerate with `cargo run --release --bin fig3`.

#![forbid(unsafe_code)]

use soc_tdc::model::{benchmarks, generator::synthesize_missing_test_sets, Soc};
use soc_tdc::report::group_digits;
use soc_tdc::selenc::{CoreProfile, ProfileConfig};

fn main() {
    let mut soc = Soc::new("fig3", vec![benchmarks::ckt(7)]);
    synthesize_missing_test_sets(&mut soc, 2008);
    let core = &soc.cores()[0];
    println!(
        "# Figure 3: lowest test time per TAM width for {} (best m per w)",
        core.name()
    );

    let profile = CoreProfile::build(
        core,
        &ProfileConfig::new(13).pattern_sample(48).m_candidates(48),
    );
    println!(
        "{:>4} {:>6} {:>12} {:>14}",
        "w", "m*", "tau (cyc)", "volume (bits)"
    );
    for e in profile.entries() {
        println!(
            "{:>4} {:>6} {:>12} {:>14}",
            e.tam_width, e.chains, e.test_time, e.volume_bits
        );
    }

    let entries = profile.entries();
    let bumps: Vec<(u32, u32)> = entries
        .windows(2)
        .filter(|p| p[1].test_time > p[0].test_time)
        .map(|p| (p[0].tam_width, p[1].tam_width))
        .collect();
    println!();
    if bumps.is_empty() {
        println!("curve is monotone on this instance (paper observed bumps, e.g. w=11 < w=12, 13)");
    } else {
        for (a, b) in &bumps {
            println!("non-monotonic: tau(w={b}) > tau(w={a}) — wider is slower here");
        }
    }
    let best = entries.iter().min_by_key(|e| e.test_time).expect("entries");
    println!(
        "global best: w = {}, m = {}, tau = {} cycles",
        best.tam_width,
        best.chains,
        group_digits(best.test_time)
    );
}
