//! Figure 4 — three test-architecture alternatives for one industrial
//! design at a 31-wire budget:
//!
//! (a) optimized architecture and schedule, no compression;
//! (b) one decompressor per TAM (wide expanded TAMs across the chip);
//! (c) one decompressor per core (the proposal: same test time as (b),
//!     far narrower on-chip routing).
//!
//! Regenerate with `cargo run --release --bin fig4`.

#![forbid(unsafe_code)]

use soc_tdc::model::{benchmarks, generator::synthesize_missing_test_sets, Soc};
use soc_tdc::planner::{PlanRequest, Planner};
use soc_tdc::report::group_digits;
use soc_tdc::tam::{render_gantt, CostModel};

fn main() {
    let mut soc = Soc::new(
        "fig4",
        vec![
            benchmarks::ckt(1),
            benchmarks::ckt(9),
            benchmarks::ckt(11),
            benchmarks::ckt(16),
        ],
    );
    synthesize_missing_test_sets(&mut soc, 2008);
    println!(
        "# Figure 4: architecture alternatives for {{ckt-1, ckt-9, ckt-11, ckt-16}} at 31 wires\n"
    );

    let budget = 31;
    let plans = [
        (
            "(a) no TDC",
            Planner::no_tdc().plan(&soc, &PlanRequest::tam_width(budget)),
        ),
        (
            "(b) decompressor per TAM",
            Planner::per_tam_tdc().plan(&soc, &PlanRequest::ate_channels(budget)),
        ),
        (
            "(c) decompressor per core",
            Planner::per_core_tdc().plan(&soc, &PlanRequest::ate_channels(budget)),
        ),
    ];

    let mut summary = Vec::new();
    for (label, plan) in plans {
        let plan = plan.expect("planning the figure-4 design succeeds");
        println!("--- {label} ---");
        println!(
            "tau_tot = {} cycles | TAM widths {:?} | routed on-chip wires {} | ATE channels {}",
            group_digits(plan.test_time),
            plan.schedule.tam_widths(),
            plan.routed_wires,
            plan.ate_channels
        );
        for s in &plan.core_settings {
            let how = match s.decompressor {
                Some((w, m)) => format!("decompressor {w}→{m}"),
                None => "raw wrapper".to_string(),
            };
            println!(
                "    {:>7}: TAM{} (w={:>2}), tau = {:>11}, {how}",
                s.name,
                s.tam,
                s.tam_width,
                group_digits(s.test_time)
            );
        }
        // Render the schedule as in the paper's figure.
        let mut cost = CostModel::new(budget);
        for s in &plan.core_settings {
            let mut row = vec![None; budget as usize];
            row[(s.tam_width - 1) as usize] = Some(s.test_time);
            cost.push_core(&s.name, row);
        }
        println!("{}", render_gantt(&plan.schedule, &cost, 56));
        summary.push((label, plan.test_time, plan.routed_wires));
    }

    println!("--- summary ---");
    for (label, tau, wires) in &summary {
        println!(
            "{label:>28}: tau = {:>12}, routed wires = {wires}",
            group_digits(*tau)
        );
    }
    let (_, tau_a, _) = summary[0];
    let (_, tau_b, wires_b) = summary[1];
    let (_, tau_c, wires_c) = summary[2];
    println!();
    println!(
        "TDC speedup (a)/(c): {:.2}x; (b) vs (c) test time: {:.2}x; routing (b)/(c): {:.1}x wider",
        tau_a as f64 / tau_c as f64,
        tau_b as f64 / tau_c as f64,
        wires_b as f64 / wires_c as f64
    );
}
