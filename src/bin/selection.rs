//! Extension experiment — per-core compression-technique selection (the
//! authors' ATS 2008 follow-up direction): each core independently picks
//! the fastest of {raw, selective encoding, FDR} at its TAM width.
//!
//! Regenerate with `cargo run --release --bin selection`.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::{group_digits, ratio};

fn main() {
    println!("# Extension: per-core compression-technique selection at W_TAM = 32");
    println!(
        "{:>8} | {:>12} {:>12} {:>12} {:>12} | {:>9} | technique mix",
        "design", "raw", "selenc", "FDR", "select", "sel/best"
    );

    let cfg = DecisionConfig {
        pattern_sample: Some(16),
        m_candidates: 12,
    };
    for design in [Design::D695, Design::System1, Design::System2] {
        let soc = design.build_with_cubes(2008);
        let req = PlanRequest::tam_width(32).with_decisions(cfg.clone());
        let raw = Planner::no_tdc().plan(&soc, &req).expect("raw plan");
        let selenc = Planner::per_core_tdc()
            .plan(&soc, &req)
            .expect("selenc plan");
        let fdr = Planner::fdr_tdc().plan(&soc, &req).expect("FDR plan");
        let select = Planner::select_tdc().plan(&soc, &req).expect("select plan");

        let best_single = raw.test_time.min(selenc.test_time).min(fdr.test_time);
        let mut mix: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &select.core_settings {
            *mix.entry(s.technique.label()).or_default() += 1;
        }
        let mix: Vec<String> = mix.iter().map(|(k, v)| format!("{k}×{v}")).collect();
        println!(
            "{:>8} | {:>12} {:>12} {:>12} {:>12} | {:>9} | {}",
            design.name(),
            group_digits(raw.test_time),
            group_digits(selenc.test_time),
            group_digits(fdr.test_time),
            group_digits(select.test_time),
            ratio(select.test_time, best_single),
            mix.join(" ")
        );
        // Per-width decisions dominate pointwise, but greedy scheduling is
        // subject to Graham-type anomalies: a uniformly faster cost matrix
        // can still schedule slightly worse. Allow a small margin.
        assert!(
            select.test_time <= best_single * 11 / 10,
            "selection fell more than 10% behind the best single technique"
        );
    }
    println!();
    println!(
        "# Selection matches the best single technique per design (ratios ≈ 1.00; small
# excursions above 1 are greedy-scheduling anomalies — per-core decisions
# dominate pointwise, schedules need not), and the"
    );
    println!("# technique mix shows different cores genuinely preferring different schemes.");
}
