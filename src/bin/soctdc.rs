//! The `soctdc` command-line tool: plan SOC tests, profile cores, list
//! built-in benchmark designs, convert between description formats.
//!
//! Run `soctdc help` for usage.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use soc_tdc::cli::{parse_args, run, CliError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&command, &mut std::io::stdout()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(m)) => {
            eprintln!("{m}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
