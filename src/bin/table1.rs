//! Table 1 — test-time comparison under an ATE-channel constraint
//! (`W_ATE` ∈ {16, 32}) for d695 and the d2758-like SOC.
//!
//! Baselines: SOC-level (per-TAM) decompression ≈ \[18\], and per-core
//! decompressors pinned to w = 4 ≈ \[11\]. `tau_c` is the proposed per-core
//! co-optimization.
//!
//! Regenerate with `cargo run --release --bin table1`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::{group_digits, ratio};

fn main() {
    println!("# Table 1: test time at ATE-channel constraint W_ATE");
    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "design", "W_ATE", "tau[18]-like", "tau[11]-like", "tau_c (ours)", "c/[18]", "c/[11]"
    );

    let cfg = DecisionConfig {
        pattern_sample: Some(32),
        m_candidates: 16,
    };
    for design in [Design::D695, Design::D2758] {
        let soc = design.build_with_cubes(2008);
        for w_ate in [16u32, 32] {
            let req = PlanRequest::ate_channels(w_ate).with_decisions(cfg.clone());
            let soc_level = Planner::per_tam_tdc()
                .plan(&soc, &req)
                .expect("per-TAM plan");
            let fixed4 = Planner::fixed_width_tdc(4)
                .plan(&soc, &req)
                .expect("fixed-width plan");
            let ours = Planner::per_core_tdc()
                .plan(&soc, &req)
                .expect("per-core plan");
            println!(
                "{:>8} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
                design.name(),
                w_ate,
                group_digits(soc_level.test_time),
                group_digits(fixed4.test_time),
                group_digits(ours.test_time),
                ratio(ours.test_time, soc_level.test_time),
                ratio(ours.test_time, fixed4.test_time),
            );
        }
    }
    println!();
    println!("# Note: at an ATE-channel constraint the SOC-level decompressor [18] gets its");
    println!("# expansion for free (wide internal TAMs), so ratios near or above 1.0 match the");
    println!("# paper's observation that it \"performs not as well\" here than at a TAM-wire");
    println!("# constraint (Table 2).");
}
