//! Table 2 — test-time comparison under a TAM-width constraint
//! (`W_TAM` ∈ {16, 24, 32, 40, 48, 56, 64}) for d695.
//!
//! Baselines: SOC-level (per-TAM) decompression under the internal-wire
//! budget ≈ \[18\], and LFSR reseeding ≈ \[13\]. `tau_c` is the proposed
//! per-core co-optimization.
//!
//! Regenerate with `cargo run --release --bin table2`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::{group_digits, ratio};

fn main() {
    println!("# Table 2: test time at TAM-width constraint W_TAM (d695)");
    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "design", "W_TAM", "tau[18]-like", "tau[13]-like", "tau_c (ours)", "c/[18]", "c/[13]"
    );

    let soc = Design::D695.build_with_cubes(2008);
    let cfg = DecisionConfig {
        pattern_sample: Some(16),
        m_candidates: 16,
    };
    for w_tam in [16u32, 24, 32, 40, 48, 56, 64] {
        let req = PlanRequest::tam_width(w_tam).with_decisions(cfg.clone());
        let soc_level = Planner::per_tam_tdc()
            .plan(&soc, &req)
            .expect("per-TAM plan");
        let reseed = Planner::reseeding_tdc()
            .plan(&soc, &req)
            .expect("reseeding plan");
        let ours = Planner::per_core_tdc()
            .plan(&soc, &req)
            .expect("per-core plan");
        println!(
            "{:>8} {:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
            "d695",
            w_tam,
            group_digits(soc_level.test_time),
            group_digits(reseed.test_time),
            group_digits(ours.test_time),
            ratio(ours.test_time, soc_level.test_time),
            ratio(ours.test_time, reseed.test_time),
        );
    }
    println!();
    println!("# Paper's shape: at a TAM-wire constraint the proposed method beats the");
    println!("# SOC-level decompressor [18] (ratios < 1) and lands in the same range as the");
    println!("# LFSR-reseeding flow [13].");
}
