//! Table 3 — the headline result: test time and test-data volume with vs
//! without core-level test-data compression, at several TAM-width
//! constraints, for d695 and the industrial-like SOCs System1–System4.
//!
//! Regenerate with `cargo run --release --bin table3`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::report::{group_digits, mbits, ratio};

fn main() {
    println!("# Table 3: test-time minimization at TAM-width constraint, with vs without TDC");
    println!(
        "{:>8} {:>8} {:>6} | {:>13} {:>8} {:>7} | {:>13} {:>8} {:>7} | {:>8} {:>8} {:>8}",
        "design",
        "Vi(Mb)",
        "W_TAM",
        "tau_nc",
        "Vnc(Mb)",
        "cpu(s)",
        "tau_c",
        "Vc(Mb)",
        "cpu(s)",
        "t_nc/t_c",
        "Vi/Vc",
        "Vnc/Vc"
    );

    let designs = [
        Design::D695,
        Design::System1,
        Design::System2,
        Design::System3,
        Design::System4,
    ];
    let widths = [16u32, 32, 64];
    let cfg = DecisionConfig {
        pattern_sample: Some(24),
        m_candidates: 16,
    };

    let mut all_ratios: Vec<(bool, f64, f64, f64)> = Vec::new();
    for design in designs {
        let soc = design.build_with_cubes(2008);
        let v_i = soc.initial_volume_bits();
        for w in widths {
            let req = PlanRequest::tam_width(w).with_decisions(cfg.clone());
            let nc = Planner::no_tdc().plan(&soc, &req).expect("no-TDC plan");
            let c = Planner::per_core_tdc().plan(&soc, &req).expect("TDC plan");
            println!(
                "{:>8} {:>8} {:>6} | {:>13} {:>8} {:>7.2} | {:>13} {:>8} {:>7.2} | {:>8} {:>8} {:>8}",
                design.name(),
                mbits(v_i),
                w,
                group_digits(nc.test_time),
                mbits(nc.volume_bits),
                nc.cpu_time.as_secs_f64(),
                group_digits(c.test_time),
                mbits(c.volume_bits),
                c.cpu_time.as_secs_f64(),
                ratio(nc.test_time, c.test_time),
                ratio(v_i, c.volume_bits),
                ratio(nc.volume_bits, c.volume_bits),
            );
            all_ratios.push((
                design.is_industrial(),
                nc.test_time as f64 / c.test_time as f64,
                v_i as f64 / c.volume_bits as f64,
                nc.volume_bits as f64 / c.volume_bits as f64,
            ));
        }
    }

    let avg = |rows: &[&(bool, f64, f64, f64)], k: usize| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .map(|r| match k {
                1 => r.1,
                2 => r.2,
                _ => r.3,
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let all: Vec<&(bool, f64, f64, f64)> = all_ratios.iter().collect();
    let industrial: Vec<&(bool, f64, f64, f64)> = all_ratios.iter().filter(|r| r.0).collect();
    println!();
    println!(
        "average (all designs):        time x{:.2}  Vi/Vc x{:.2}  Vnc/Vc x{:.2}   [paper: 12.59x / - / 12.78x]",
        avg(&all, 1),
        avg(&all, 2),
        avg(&all, 3)
    );
    println!(
        "average (industrial only):    time x{:.2}  Vi/Vc x{:.2}  Vnc/Vc x{:.2}   [paper: 15.39x / - / 15.80x]",
        avg(&industrial, 1),
        avg(&industrial, 2),
        avg(&industrial, 3)
    );
}
