//! Extension experiment — classic TAM-architecture optimization (no
//! compression) on the large ITC'02-class SOCs, the setting of the
//! Iyengar/Chakrabarty/Marinissen and Goel/Marinissen literature the paper
//! builds on: for each design and wire budget, how close do the search
//! strategies get to the schedule lower bound?
//!
//! Regenerate with `cargo run --release --bin tamopt`.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::planner::{CompressionMode, DecisionConfig, DecisionTable};
use soc_tdc::report::group_digits;
use soc_tdc::tam::{
    anneal_architecture, optimize_architecture, AnnealOptions, ArchitectureOptions, CostModel,
};

fn main() {
    println!("# Extension: TAM optimization (no TDC) on ITC'02-class SOCs");
    println!(
        "{:>8} {:>4} | {:>12} | {:>12} {:>6} | {:>12} {:>6} | {:>5}",
        "design", "W", "lower bound", "hill-climb", "gap", "anneal", "gap", "TAMs"
    );

    for design in [Design::P22810, Design::P34392, Design::P93791] {
        let soc = design.build();
        for w in [16u32, 32, 64] {
            let mut cost = CostModel::new(w);
            for core in soc.cores() {
                let t =
                    DecisionTable::build(core, CompressionMode::None, w, &DecisionConfig::exact());
                cost.push_core(core.name(), t.time_row());
            }
            let lb = cost.lower_bound(w);
            let hill =
                optimize_architecture(&cost, w, &ArchitectureOptions::default()).expect("feasible");
            let sa = anneal_architecture(
                &cost,
                w,
                &AnnealOptions {
                    iterations: 4000,
                    ..Default::default()
                },
            )
            .expect("feasible");
            let gap = |t: u64| 100.0 * (t as f64 / lb as f64 - 1.0);
            println!(
                "{:>8} {:>4} | {:>12} | {:>12} {:>5.1}% | {:>12} {:>5.1}% | {:>5}",
                design.name(),
                w,
                group_digits(lb),
                group_digits(hill.test_time),
                gap(hill.test_time),
                group_digits(sa.test_time),
                gap(sa.test_time),
                hill.schedule.tam_widths().len(),
            );
        }
    }
    println!();
    println!("# Gaps vs the width-scaled lower bound stay in single digits for wide budgets,");
    println!("# matching the behaviour reported for TR-Architect-class heuristics on the real");
    println!("# p-SOCs. (These designs are *-like approximations; see benchmarks docs.)");
}
