//! Command-line interface logic for the `soctdc` binary.
//!
//! Kept in the library so argument parsing and command dispatch are unit
//! testable; the binary is a thin wrapper. No external argument-parsing
//! dependency — the grammar is small and fixed.

use std::fmt;

use crate::model::benchmarks::Design;
use crate::model::format::parse_soc;
use crate::model::generator::synthesize_missing_test_sets;
use crate::model::itc02::{parse_itc02, write_itc02};
use crate::model::Soc;
use crate::planner::{
    export_image, parse_plan, verify_image, write_plan, Budget, DecisionConfig, PlanControl,
    PlanRequest, Planner,
};
use crate::selenc::{generate_verilog, CoreProfile, ProfileConfig, SliceCode, SliceStats};
use crate::tam::{render_gantt, ArchitectureOptions, CostModel};

/// A parsed `soctdc` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Plan an SOC test (`soctdc plan …`).
    Plan(PlanArgs),
    /// Print a core's (w, m) lookup table (`soctdc profile …`).
    Profile(ProfileArgs),
    /// List the built-in benchmark designs (`soctdc designs`).
    Designs,
    /// Convert between the simple and ITC'02 formats (`soctdc convert …`).
    Convert(ConvertArgs),
    /// Emit decompressor Verilog (`soctdc rtl …`).
    Rtl(RtlArgs),
    /// Print a core's slice statistics (`soctdc stats …`).
    Stats(StatsArgs),
    /// Re-verify a saved plan bit-exactly (`soctdc verify …`).
    Verify(VerifyArgs),
    /// Print a per-core summary of an SOC (`soctdc info …`).
    Info(InfoArgs),
    /// Fit a test to a tester memory budget by truncation
    /// (`soctdc truncate …`).
    Truncate(TruncateArgs),
    /// Run the persistent planning daemon (`soctdc serve …`).
    Serve(ServeArgs),
    /// Plan a whole manifest of design instances (`soctdc fleet …`).
    Fleet(FleetArgs),
    /// Print usage (`soctdc help`).
    Help,
}

/// Arguments of `soctdc fleet`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetArgs {
    /// Manifest file path (one design instance sweep per line).
    pub manifest: String,
    /// Total worker budget across both scheduling levels
    /// (`0` = auto-detect one per available CPU).
    pub workers: usize,
    /// Shared sharded profile-cache root (safe for concurrent fleets).
    pub profile_cache: Option<String>,
    /// Write each instance's plan file as `ID.plan` into this directory.
    pub plan_dir: Option<String>,
    /// Skip instances whose `--plan-dir` plan file round-trips
    /// byte-identical from a previous run.
    pub resume: bool,
    /// Stream one JSON line per instance (in completion order) to this
    /// file while the batch runs.
    pub ndjson: Option<String>,
}

/// Arguments of `soctdc serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Persistent state root (sessions, caches, quarantine).
    pub root: String,
    /// Optional `host:port` for the HTTP listener.
    pub http: Option<String>,
    /// Planning worker threads (`None` = daemon default).
    pub workers: Option<usize>,
    /// Request-queue capacity (`None` = daemon default).
    pub queue_cap: Option<usize>,
    /// Default wall-clock budget (ms) for plan requests without one.
    pub default_budget_ms: Option<u64>,
}

/// Where an SOC comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocSource {
    /// A file in the simple line format.
    SimpleFile(String),
    /// A file in ITC'02 format.
    Itc02File(String),
    /// A built-in benchmark design.
    Builtin(Design),
}

/// Arguments of `soctdc plan`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanArgs {
    /// SOC source.
    pub source: SocSource,
    /// Wire budget.
    pub budget: Budget,
    /// Compression mode keyword.
    pub mode: String,
    /// Cube-synthesis seed.
    pub seed: u64,
    /// Evaluation fidelity.
    pub decisions: DecisionConfig,
    /// Care density for ITC'02 inputs (the format carries none).
    pub density: f64,
    /// Render an ASCII Gantt chart.
    pub gantt: bool,
    /// Write the plan file here.
    pub plan_out: Option<String>,
    /// Wall-clock planning budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Checkpoint the best incumbent plan here while searching.
    pub checkpoint: Option<String>,
    /// Resume from a previously checkpointed plan file.
    pub resume: Option<String>,
    /// Worker threads for table building and architecture search
    /// (`None` or `Some(0)` = one per available CPU; results are
    /// identical either way).
    pub workers: Option<usize>,
    /// Cache per-core profiles as CSVs in this directory, so repeated
    /// planning runs over the same design skip the profile rebuild.
    pub profile_cache: Option<String>,
}

/// Arguments of `soctdc profile`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileArgs {
    /// SOC source.
    pub source: SocSource,
    /// Core name within the SOC.
    pub core: String,
    /// Widest TAM width to profile.
    pub max_width: u32,
    /// Cube-synthesis seed.
    pub seed: u64,
    /// Patterns sampled per evaluation.
    pub sample: usize,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Arguments of `soctdc rtl`.
#[derive(Debug, Clone, PartialEq)]
pub struct RtlArgs {
    /// Decompressor output chains `m`.
    pub chains: u32,
    /// Verilog module name.
    pub module: String,
}

/// Arguments of `soctdc stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsArgs {
    /// SOC source.
    pub source: SocSource,
    /// Core name within the SOC.
    pub core: String,
    /// Wrapper chains to analyze at.
    pub chains: u32,
    /// Cube-synthesis seed.
    pub seed: u64,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Arguments of `soctdc verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyArgs {
    /// SOC source (must match the one the plan was made for).
    pub source: SocSource,
    /// Path of the plan file.
    pub plan: String,
    /// Cube-synthesis seed (must match the planning run).
    pub seed: u64,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Arguments of `soctdc truncate`.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncateArgs {
    /// SOC source.
    pub source: SocSource,
    /// Wire budget.
    pub budget: Budget,
    /// Compression mode keyword.
    pub mode: String,
    /// Tester vector-memory depth.
    pub depth: u64,
    /// Cube-synthesis seed.
    pub seed: u64,
    /// Evaluation fidelity.
    pub decisions: DecisionConfig,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Arguments of `soctdc info`.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoArgs {
    /// SOC source.
    pub source: SocSource,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Arguments of `soctdc convert`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvertArgs {
    /// SOC source.
    pub source: SocSource,
    /// Target format: `"itc02"` or `"simple"`.
    pub to: String,
    /// Care density for ITC'02 inputs.
    pub density: f64,
}

/// Error produced while parsing or running a command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the string is a user-facing message.
    Usage(String),
    /// Any downstream failure (IO, parse, planning).
    Run(Box<dyn std::error::Error>),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// The usage text (`soctdc help`).
pub const USAGE: &str = "\
soctdc — SOC test-architecture optimization with core-level decompression

USAGE:
  soctdc plan    (--soc FILE | --itc02 FILE | --design NAME) [--width N | --ate N]
                 [--mode no-tdc|per-core|per-tam|fixed4|reseed|fdr|select] [--seed N]
                 [--sample N] [--mcand N] [--exact] [--density F] [--gantt]
                 [--plan-out FILE] [--deadline MS] [--checkpoint FILE] [--resume FILE]
                 [--workers N] [--profile-cache DIR]
  soctdc profile (--soc FILE | --itc02 FILE | --design NAME) --core NAME
                 [--max-width N] [--seed N] [--sample N] [--density F]
  soctdc convert (--soc FILE | --itc02 FILE | --design NAME) --to itc02|simple
                 [--density F]
  soctdc verify  (--soc FILE | --itc02 FILE | --design NAME) --plan FILE
                 [--seed N] [--density F]
  soctdc rtl     --chains M [--module NAME]
  soctdc stats   (--soc FILE | --itc02 FILE | --design NAME) --core NAME
                 --chains M [--seed N] [--density F]
  soctdc truncate (--soc FILE | --itc02 FILE | --design NAME) --depth N
                 [--width N | --ate N] [--mode …] [--seed N] [--density F]
  soctdc info    (--soc FILE | --itc02 FILE | --design NAME) [--density F]
  soctdc serve   --root DIR [--http ADDR] [--workers N] [--queue-cap N]
                 [--deadline MS]
  soctdc fleet   --manifest FILE [--workers N] [--profile-cache DIR]
                 [--plan-dir DIR] [--resume] [--ndjson FILE]
  soctdc designs
  soctdc help

Defaults: --width 32, --mode per-core, --seed 2008, --sample 24, --mcand 16,
          --density 0.66 (for ITC'02 inputs).
--workers 0 auto-detects one worker per available CPU (plan, serve, fleet).";

/// Parses a `soctdc` command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] with a message on malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let usage = |m: &str| CliError::Usage(m.to_string());
    let Some(cmd) = args.first() else {
        return Err(usage("missing command"));
    };
    let mut source: Option<SocSource> = None;
    let mut width: Option<u32> = None;
    let mut ate: Option<u32> = None;
    let mut mode = "per-core".to_string();
    let mut seed = 2008u64;
    let mut sample: Option<usize> = Some(24);
    let mut mcand = 16usize;
    let mut exact = false;
    let mut density = 0.66f64;
    let mut gantt = false;
    let mut core: Option<String> = None;
    let mut max_width = 16u32;
    let mut to: Option<String> = None;
    let mut chains: Option<u32> = None;
    let mut module = "decompressor".to_string();
    let mut plan_out: Option<String> = None;
    let mut plan_file: Option<String> = None;
    let mut depth: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut checkpoint: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut profile_cache: Option<String> = None;
    let mut root: Option<String> = None;
    let mut http: Option<String> = None;
    let mut queue_cap: Option<usize> = None;
    let mut manifest: Option<String> = None;
    let mut plan_dir: Option<String> = None;
    let mut resume_flag = false;
    let mut ndjson: Option<String> = None;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        // `--resume` is overloaded: `plan --resume FILE` resumes from a
        // checkpoint, bare `fleet --resume` skips already-planned
        // instances. Peek so a following flag is not eaten as the value.
        if flag == "--resume" {
            match it.clone().next() {
                Some(v) if !v.starts_with("--") => {
                    resume = Some(v.clone());
                    it.next();
                }
                _ => resume_flag = true,
            }
            continue;
        }
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--soc" => source = Some(SocSource::SimpleFile(value("--soc")?)),
            "--itc02" => source = Some(SocSource::Itc02File(value("--itc02")?)),
            "--design" => {
                let name = value("--design")?;
                let d = Design::ALL
                    .into_iter()
                    .find(|d| d.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| usage(&format!("unknown design `{name}`")))?;
                source = Some(SocSource::Builtin(d));
            }
            "--width" => width = Some(parse_num(&value("--width")?, "--width")?),
            "--ate" => ate = Some(parse_num(&value("--ate")?, "--ate")?),
            "--mode" => mode = value("--mode")?,
            "--seed" => seed = parse_num(&value("--seed")?, "--seed")?,
            "--sample" => sample = Some(parse_num(&value("--sample")?, "--sample")?),
            "--mcand" => mcand = parse_num(&value("--mcand")?, "--mcand")?,
            "--exact" => exact = true,
            "--density" => {
                density = value("--density")?
                    .parse()
                    .map_err(|_| usage("--density needs a number"))?;
            }
            "--gantt" => gantt = true,
            "--core" => core = Some(value("--core")?),
            "--max-width" => max_width = parse_num(&value("--max-width")?, "--max-width")?,
            "--to" => to = Some(value("--to")?),
            "--chains" => chains = Some(parse_num(&value("--chains")?, "--chains")?),
            "--module" => module = value("--module")?,
            "--plan-out" => plan_out = Some(value("--plan-out")?),
            "--plan" => plan_file = Some(value("--plan")?),
            "--depth" => depth = Some(parse_num(&value("--depth")?, "--depth")?),
            "--deadline" => deadline_ms = Some(parse_num(&value("--deadline")?, "--deadline")?),
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?),
            "--ndjson" => ndjson = Some(value("--ndjson")?),
            // `0` is meaningful: auto-detect one worker per available CPU.
            "--workers" => workers = Some(parse_num(&value("--workers")?, "--workers")?),
            "--profile-cache" => profile_cache = Some(value("--profile-cache")?),
            "--manifest" => manifest = Some(value("--manifest")?),
            "--plan-dir" => plan_dir = Some(value("--plan-dir")?),
            "--root" => root = Some(value("--root")?),
            "--http" => http = Some(value("--http")?),
            "--queue-cap" => {
                let n: usize = parse_num(&value("--queue-cap")?, "--queue-cap")?;
                if n == 0 {
                    return Err(usage("--queue-cap needs at least 1"));
                }
                queue_cap = Some(n);
            }
            other => return Err(usage(&format!("unknown flag `{other}`"))),
        }
    }

    let decisions = if exact {
        DecisionConfig::exact()
    } else {
        DecisionConfig {
            pattern_sample: sample,
            m_candidates: mcand,
        }
    };
    let need_source =
        |source: Option<SocSource>| source.ok_or_else(|| usage("an SOC source is required"));

    match cmd.as_str() {
        "plan" => {
            if width.is_some() && ate.is_some() {
                return Err(usage("--width and --ate are mutually exclusive"));
            }
            let budget = match (width, ate) {
                (_, Some(a)) => Budget::AteChannels(a),
                (w, None) => Budget::TamWidth(w.unwrap_or(32)),
            };
            if resume_flag {
                return Err(usage("plan --resume needs a checkpoint FILE"));
            }
            Ok(Command::Plan(PlanArgs {
                source: need_source(source)?,
                budget,
                mode,
                seed,
                decisions,
                density,
                gantt,
                plan_out,
                deadline_ms,
                checkpoint,
                resume,
                workers,
                profile_cache,
            }))
        }
        "profile" => Ok(Command::Profile(ProfileArgs {
            source: need_source(source)?,
            core: core.ok_or_else(|| usage("profile needs --core NAME"))?,
            max_width,
            seed,
            sample: sample.unwrap_or(24),
            density,
        })),
        "convert" => Ok(Command::Convert(ConvertArgs {
            source: need_source(source)?,
            to: to.ok_or_else(|| usage("convert needs --to itc02|simple"))?,
            density,
        })),
        "rtl" => Ok(Command::Rtl(RtlArgs {
            chains: chains.ok_or_else(|| usage("rtl needs --chains M"))?,
            module,
        })),
        "stats" => Ok(Command::Stats(StatsArgs {
            source: need_source(source)?,
            core: core.ok_or_else(|| usage("stats needs --core NAME"))?,
            chains: chains.ok_or_else(|| usage("stats needs --chains M"))?,
            seed,
            density,
        })),
        "verify" => Ok(Command::Verify(VerifyArgs {
            source: need_source(source)?,
            plan: plan_file.ok_or_else(|| usage("verify needs --plan FILE"))?,
            seed,
            density,
        })),
        "truncate" => {
            let budget = match (width, ate) {
                (_, Some(a)) => Budget::AteChannels(a),
                (w, None) => Budget::TamWidth(w.unwrap_or(32)),
            };
            Ok(Command::Truncate(TruncateArgs {
                source: need_source(source)?,
                budget,
                mode,
                depth: depth.ok_or_else(|| usage("truncate needs --depth N"))?,
                seed,
                decisions,
                density,
            }))
        }
        "serve" => Ok(Command::Serve(ServeArgs {
            root: root.ok_or_else(|| usage("serve needs --root DIR"))?,
            http,
            workers,
            queue_cap,
            default_budget_ms: deadline_ms,
        })),
        "fleet" => {
            if resume.is_some() {
                return Err(usage(
                    "fleet --resume takes no value (plans come from --plan-dir)",
                ));
            }
            if resume_flag && plan_dir.is_none() {
                return Err(usage("fleet --resume needs --plan-dir DIR"));
            }
            Ok(Command::Fleet(FleetArgs {
                manifest: manifest.ok_or_else(|| usage("fleet needs --manifest FILE"))?,
                workers: workers.unwrap_or(0),
                profile_cache,
                plan_dir,
                resume: resume_flag,
                ndjson,
            }))
        }
        "info" => Ok(Command::Info(InfoArgs {
            source: need_source(source)?,
            density,
        })),
        "designs" => Ok(Command::Designs),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(usage(&format!("unknown command `{other}`"))),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::Usage(format!("{flag}: invalid number `{s}`")))
}

/// Loads an SOC from a source (no cubes attached yet).
fn load_soc(source: &SocSource, density: f64) -> Result<Soc, CliError> {
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Run(format!("cannot read {path}: {e}").into()))
    };
    match source {
        SocSource::SimpleFile(path) => {
            parse_soc(&read(path)?).map_err(|e| CliError::Run(Box::new(e)))
        }
        SocSource::Itc02File(path) => {
            let parsed =
                parse_itc02(&read(path)?, density).map_err(|e| CliError::Run(Box::new(e)))?;
            if !parsed.skipped_modules.is_empty() {
                eprintln!(
                    "note: skipped untestable modules {:?}",
                    parsed.skipped_modules
                );
            }
            Ok(parsed.soc)
        }
        SocSource::Builtin(d) => Ok(d.build()),
    }
}

fn planner_for(mode: &str) -> Result<Planner, CliError> {
    Ok(match mode {
        "no-tdc" => Planner::no_tdc(),
        "per-core" => Planner::per_core_tdc(),
        "per-tam" => Planner::per_tam_tdc(),
        "fixed4" => Planner::fixed_width_tdc(4),
        "reseed" => Planner::reseeding_tdc(),
        "fdr" => Planner::fdr_tdc(),
        "select" => Planner::select_tdc(),
        other => {
            return Err(CliError::Usage(format!("unknown mode `{other}`")));
        }
    })
}

/// Resolves a `--workers` value: `0` means one per available CPU.
fn resolve_workers(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        n
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates IO, parse, and planning failures as [`CliError::Run`].
pub fn run(command: &Command, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let io_err = |e: std::io::Error| CliError::Run(Box::new(e));
    match command {
        Command::Help => writeln!(out, "{USAGE}").map_err(io_err),
        Command::Serve(args) => {
            let mut config = serve::ServeConfig::new(&args.root);
            config.http = args.http.clone();
            if let Some(w) = args.workers {
                config.workers = resolve_workers(w);
            }
            if let Some(cap) = args.queue_cap {
                config.queue_cap = cap;
            }
            if let Some(ms) = args.default_budget_ms {
                config.default_budget_ms = ms;
            }
            // The daemon owns the process stdio (NDJSON protocol); `out`
            // is not used so the wire format stays line-exact.
            match serve::run(&config) {
                0 => Ok(()),
                code => Err(CliError::Run(
                    format!("serve exited with code {code}").into(),
                )),
            }
        }
        Command::Fleet(args) => {
            let text = std::fs::read_to_string(&args.manifest)
                .map_err(|e| CliError::Run(format!("cannot read {}: {e}", args.manifest).into()))?;
            let manifest = fleet::Manifest::parse(&text).map_err(|e| CliError::Run(Box::new(e)))?;
            let opts = fleet::FleetOptions {
                workers: args.workers,
                profile_cache: args.profile_cache.clone().map(Into::into),
                resume_plan_dir: args
                    .resume
                    .then(|| args.plan_dir.clone().map(Into::into))
                    .flatten(),
                ..Default::default()
            };
            // `--ndjson` streams one line per instance as workers finish
            // it — progress is observable while the batch runs, so the
            // writer flushes per line.
            let ndjson = match &args.ndjson {
                Some(path) => Some(std::sync::Mutex::new(
                    std::fs::File::create(path)
                        .map_err(|e| CliError::Run(format!("cannot create {path}: {e}").into()))?,
                )),
                None => None,
            };
            let on_report = |r: &fleet::InstanceReport| {
                use std::io::Write as _;
                if let Some(file) = &ndjson {
                    // soclint: allow(capture-mut) -- append-only telemetry stream; line order is completion order by design
                    if let Ok(mut f) = file.lock() {
                        let _ = writeln!(f, "{}", fleet::ndjson_line(r));
                    }
                }
            };
            let hooks = fleet::FleetHooks {
                on_report: args
                    .ndjson
                    .as_ref()
                    .map(|_| &on_report as &(dyn Fn(&fleet::InstanceReport) + Sync)),
            };
            let report = fleet::run_fleet_with(&manifest, &opts, &hooks);
            for r in &report.instances {
                let note = match &r.outcome {
                    fleet::InstanceOutcome::Failed(m) => format!("failed: {m}"),
                    _ => r.outcome.keyword(),
                };
                writeln!(out, "{:<32} {:>9.1} ms  {note}", r.id, r.latency_ms).map_err(io_err)?;
            }
            if let Some(dir) = &args.plan_dir {
                std::fs::create_dir_all(dir)
                    .map_err(|e| CliError::Run(format!("cannot create {dir}: {e}").into()))?;
                let mut written = 0usize;
                for r in &report.instances {
                    // Resumed plans are already on disk byte-identical;
                    // rewriting would only churn mtimes.
                    if matches!(r.outcome, fleet::InstanceOutcome::Resumed) {
                        continue;
                    }
                    if let Some(plan) = &r.plan {
                        let path = std::path::Path::new(dir).join(format!("{}.plan", r.id));
                        std::fs::write(&path, write_plan(plan)).map_err(|e| {
                            CliError::Run(format!("cannot write {}: {e}", path.display()).into())
                        })?;
                        written += 1;
                    }
                }
                writeln!(
                    out,
                    "{written} plan files written to {dir} ({} resumed in place)",
                    report.summary.resumed
                )
                .map_err(io_err)?;
            }
            writeln!(out, "{}", report.summary).map_err(io_err)?;
            // Determinism-sanitizer drain: under `SOCTDC_DSAN=1` the pool
            // edges and shadowed cells have been recording; surface the
            // verdict, persist it when `SOCTDC_DSAN_REPORT` names a path
            // (the CI artifact), and fail the run on any race.
            if parpool::dsan::enabled() {
                let dsan_report = parpool::dsan::take_report();
                let rendered = dsan_report.to_string();
                if let Some(path) = std::env::var_os("SOCTDC_DSAN_REPORT") {
                    std::fs::write(&path, &rendered).map_err(|e| {
                        CliError::Run(format!("cannot write dsan report: {e}").into())
                    })?;
                }
                eprint!("{rendered}");
                if !dsan_report.is_clean() {
                    return Err(CliError::Run(
                        format!(
                            "determinism sanitizer: {} unordered conflicting access pair(s)",
                            dsan_report.races.len()
                        )
                        .into(),
                    ));
                }
            }
            if report.summary.failed > 0 {
                return Err(CliError::Run(
                    format!(
                        "{} of {} instances failed",
                        report.summary.failed, report.summary.instances
                    )
                    .into(),
                ));
            }
            Ok(())
        }
        Command::Designs => {
            for d in Design::ALL {
                let soc = d.build();
                writeln!(
                    out,
                    "{:<9} {:>2} cores, {:>9} scan cells, {:>12} bits stimulus{}",
                    d.name(),
                    soc.core_count(),
                    soc.total_scan_cells(),
                    soc.initial_volume_bits(),
                    if d.is_industrial() {
                        "  (industrial-like)"
                    } else {
                        ""
                    }
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        Command::Convert(args) => {
            let soc = load_soc(&args.source, args.density)?;
            let text = match args.to.as_str() {
                "itc02" => write_itc02(&soc),
                "simple" => crate::model::format::write_soc(&soc),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown target format `{other}` (itc02|simple)"
                    )));
                }
            };
            write!(out, "{text}").map_err(io_err)
        }
        Command::Truncate(args) => {
            let mut soc = load_soc(&args.source, args.density)?;
            synthesize_missing_test_sets(&mut soc, args.seed);
            let planner = planner_for(&args.mode)?;
            let request = PlanRequest {
                budget: args.budget,
                decisions: args.decisions.clone(),
                architecture: Default::default(),
            };
            let spec = crate::planner::AteSpec {
                channels: args.budget.width(),
                memory_depth: args.depth,
                clock_hz: 50_000_000,
            };
            let t = crate::planner::truncate_to_fit(&soc, &planner, &request, &spec)
                .map_err(|e| CliError::Run(Box::new(e)))?;
            write!(out, "{t}").map_err(io_err)?;
            writeln!(
                out,
                "quality proxy (care bits kept): {:.1}%",
                100.0 * t.quality_proxy(&soc)
            )
            .map_err(io_err)
        }
        Command::Info(args) => {
            let soc = load_soc(&args.source, args.density)?;
            writeln!(out, "{soc}").map_err(io_err)?;
            writeln!(
                out,
                "{:>14} {:>8} {:>8} {:>7} {:>10} {:>9} {:>8} {:>10}",
                "core",
                "inputs",
                "outputs",
                "bidirs",
                "scan cells",
                "patterns",
                "density",
                "Vi (bits)"
            )
            .map_err(io_err)?;
            for core in soc.cores() {
                writeln!(
                    out,
                    "{:>14} {:>8} {:>8} {:>7} {:>10} {:>9} {:>8.3} {:>10}",
                    core.name(),
                    core.inputs(),
                    core.outputs(),
                    core.bidirs(),
                    core.scan_cells(),
                    core.pattern_count(),
                    core.care_density(),
                    core.initial_volume_bits()
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        Command::Verify(args) => {
            let mut soc = load_soc(&args.source, args.density)?;
            synthesize_missing_test_sets(&mut soc, args.seed);
            let text = std::fs::read_to_string(&args.plan)
                .map_err(|e| CliError::Run(format!("cannot read {}: {e}", args.plan).into()))?;
            let plan = parse_plan(&text).map_err(|e| CliError::Run(Box::new(e)))?;
            let image = export_image(&soc, &plan).map_err(|e| CliError::Run(Box::new(e)))?;
            verify_image(&image, &soc, &plan).map_err(|e| CliError::Run(Box::new(e)))?;
            writeln!(
                out,
                "plan verified: {} cores, {} cycles, every care bit honored",
                plan.core_settings.len(),
                plan.test_time
            )
            .map_err(io_err)
        }
        Command::Rtl(args) => {
            if args.chains == 0 {
                return Err(CliError::Usage("--chains must be positive".into()));
            }
            let code = SliceCode::for_chains(args.chains);
            write!(out, "{}", generate_verilog(code, &args.module)).map_err(io_err)
        }
        Command::Stats(args) => {
            let mut soc = load_soc(&args.source, args.density)?;
            synthesize_missing_test_sets(&mut soc, args.seed);
            let Some((_, core)) = soc.core_by_name(&args.core) else {
                return Err(CliError::Run(
                    format!("no core named {:?} in {}", args.core, soc.name()).into(),
                ));
            };
            let stats = SliceStats::for_core(core, args.chains, 32);
            writeln!(out, "{stats:#?}").map_err(io_err)
        }
        Command::Profile(args) => {
            let mut soc = load_soc(&args.source, args.density)?;
            synthesize_missing_test_sets(&mut soc, args.seed);
            let Some((_, core)) = soc.core_by_name(&args.core) else {
                return Err(CliError::Run(
                    format!("no core named {:?} in {}", args.core, soc.name()).into(),
                ));
            };
            let profile = CoreProfile::build(
                core,
                &ProfileConfig::new(args.max_width)
                    .pattern_sample(args.sample)
                    .m_candidates(32),
            );
            write!(out, "{profile}").map_err(io_err)
        }
        Command::Plan(args) => {
            let mut soc = load_soc(&args.source, args.density)?;
            synthesize_missing_test_sets(&mut soc, args.seed);
            let planner = planner_for(&args.mode)?;
            let request = PlanRequest {
                budget: args.budget,
                decisions: args.decisions.clone(),
                architecture: ArchitectureOptions {
                    workers: args.workers.map(resolve_workers),
                    ..Default::default()
                },
            };
            let mut control = match args.deadline_ms {
                Some(ms) => PlanControl::with_deadline(std::time::Duration::from_millis(ms)),
                None => PlanControl::default(),
            };
            if let Some(path) = &args.checkpoint {
                control = control.checkpoint_to(path);
            }
            if let Some(dir) = &args.profile_cache {
                // The tag pins the test-set identity (design, synthesis
                // seed, ITC'02 care density); the planner adds the width
                // budget and fidelity knobs to each file name itself.
                let tag = format!("{}-seed{}-d{:.3}", soc.name(), args.seed, args.density);
                control = control.cache_profiles_in(dir, tag);
            }
            if let Some(path) = &args.resume {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError::Run(format!("cannot read {path}: {e}").into()))?;
                let prev = parse_plan(&text).map_err(|e| CliError::Run(Box::new(e)))?;
                control = control.resume_from(prev);
            }
            let (plan, stats) = planner
                .plan_with_stats(&soc, &request, &control)
                .map_err(|e| CliError::Run(Box::new(e)))?;
            write!(out, "{plan}").map_err(io_err)?;
            if !plan.outcome.is_complete() {
                writeln!(out, "search {}: best incumbent shown", plan.outcome).map_err(io_err)?;
            }
            if stats.streams_verified > 0 {
                writeln!(
                    out,
                    "verified {} compressed streams ({} codewords) at plan time",
                    stats.streams_verified, stats.stream_words
                )
                .map_err(io_err)?;
            }
            if args.profile_cache.is_some() {
                writeln!(
                    out,
                    "profile cache: {} hits, {} partial, {} misses ({} widths reused, {} computed)",
                    stats.profile_hits,
                    stats.profile_partial_hits,
                    stats.profile_misses,
                    stats.widths_reused,
                    stats.widths_computed
                )
                .map_err(io_err)?;
            }
            if let Some(path) = &args.plan_out {
                std::fs::write(path, write_plan(&plan))
                    .map_err(|e| CliError::Run(format!("cannot write {path}: {e}").into()))?;
                writeln!(out, "plan written to {path}").map_err(io_err)?;
            }
            if args.gantt {
                let max_w = plan
                    .schedule
                    .tam_widths()
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(1);
                let mut cost = CostModel::new(max_w);
                for s in &plan.core_settings {
                    let mut row = vec![None; max_w as usize];
                    for w in s.tam_width..=max_w {
                        row[(w - 1) as usize] = Some(s.test_time);
                    }
                    cost.push_core(&s.name, row);
                }
                writeln!(out, "\n{}", render_gantt(&plan.schedule, &cost, 64)).map_err(io_err)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_plan_defaults() {
        let cmd = parse_args(&argv("plan --design d695")).unwrap();
        match cmd {
            Command::Plan(a) => {
                assert_eq!(a.budget, Budget::TamWidth(32));
                assert_eq!(a.mode, "per-core");
                assert_eq!(a.seed, 2008);
                assert!(!a.gantt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_plan_flags() {
        let cmd = parse_args(&argv(
            "plan --design system1 --ate 16 --mode no-tdc --gantt --exact",
        ))
        .unwrap();
        match cmd {
            Command::Plan(a) => {
                assert_eq!(a.budget, Budget::AteChannels(16));
                assert_eq!(a.mode, "no-tdc");
                assert!(a.gantt);
                assert_eq!(a.decisions, DecisionConfig::exact());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_robustness_flags() {
        let cmd = parse_args(&argv(
            "plan --design d695 --deadline 250 --checkpoint ck.plan --resume old.plan",
        ))
        .unwrap();
        match cmd {
            Command::Plan(a) => {
                assert_eq!(a.deadline_ms, Some(250));
                assert_eq!(a.checkpoint.as_deref(), Some("ck.plan"));
                assert_eq!(a.resume.as_deref(), Some("old.plan"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&argv("plan --design d695 --deadline soon")).is_err());
    }

    #[test]
    fn parses_workers_and_profile_cache() {
        let cmd = parse_args(&argv(
            "plan --design d695 --workers 2 --profile-cache /tmp/profcache",
        ))
        .unwrap();
        match cmd {
            Command::Plan(a) => {
                assert_eq!(a.workers, Some(2));
                assert_eq!(a.profile_cache.as_deref(), Some("/tmp/profcache"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let defaults = parse_args(&argv("plan --design d695")).unwrap();
        match defaults {
            Command::Plan(a) => {
                assert_eq!(a.workers, None);
                assert_eq!(a.profile_cache, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // `--workers 0` is the documented auto-detect spelling.
        match parse_args(&argv("plan --design d695 --workers 0")).unwrap() {
            Command::Plan(a) => assert_eq!(a.workers, Some(0)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&argv("plan --design d695 --workers lots")).is_err());
    }

    #[test]
    fn workers_zero_resolves_to_detected_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn parses_fleet_command() {
        let cmd = parse_args(&argv(
            "fleet --manifest batch.txt --workers 4 --profile-cache pc --plan-dir plans",
        ))
        .unwrap();
        match cmd {
            Command::Fleet(a) => {
                assert_eq!(a.manifest, "batch.txt");
                assert_eq!(a.workers, 4);
                assert_eq!(a.profile_cache.as_deref(), Some("pc"));
                assert_eq!(a.plan_dir.as_deref(), Some("plans"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&argv("fleet --manifest batch.txt")).unwrap() {
            Command::Fleet(a) => {
                assert_eq!(a.workers, 0, "defaults to auto-detect");
                assert_eq!(a.profile_cache, None);
                assert_eq!(a.plan_dir, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&argv("fleet")).is_err(), "manifest is required");
    }

    #[test]
    fn parses_fleet_resume_and_ndjson() {
        // Bare `--resume` is a flag for fleet, even when other flags
        // follow it.
        match parse_args(&argv(
            "fleet --resume --manifest b.txt --plan-dir plans --ndjson prog.ndjson",
        ))
        .unwrap()
        {
            Command::Fleet(a) => {
                assert!(a.resume);
                assert_eq!(a.ndjson.as_deref(), Some("prog.ndjson"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `plan --resume FILE` still takes its checkpoint argument.
        match parse_args(&argv("plan --design d695 --resume old.plan")).unwrap() {
            Command::Plan(a) => assert_eq!(a.resume.as_deref(), Some("old.plan")),
            other => panic!("unexpected {other:?}"),
        }
        // Misuse is caught, not silently reinterpreted.
        assert!(
            parse_args(&argv("fleet --manifest b.txt --resume plans")).is_err(),
            "fleet --resume takes no value"
        );
        assert!(
            parse_args(&argv("fleet --manifest b.txt --resume")).is_err(),
            "fleet --resume needs --plan-dir"
        );
        assert!(
            parse_args(&argv("plan --design d695 --resume")).is_err(),
            "plan --resume needs a file"
        );
    }

    #[test]
    fn fleet_resume_skips_written_plans_and_streams_ndjson() {
        let dir = std::env::temp_dir().join(format!("soctdc-fleet-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("batch.txt");
        std::fs::write(&manifest, "design d695 widths=10,12 sample=4 mcand=4\n").unwrap();
        let plans = dir.join("plans");
        let ndjson = dir.join("progress.ndjson");

        // Cold run writes the plan files.
        let cold = parse_args(&argv(&format!(
            "fleet --manifest {} --workers 1 --plan-dir {}",
            manifest.display(),
            plans.display()
        )))
        .unwrap();
        run(&cold, &mut Vec::new()).unwrap();

        // Warm run resumes both and streams NDJSON progress.
        let warm = parse_args(&argv(&format!(
            "fleet --resume --manifest {} --workers 1 --plan-dir {} --ndjson {}",
            manifest.display(),
            plans.display(),
            ndjson.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        run(&warm, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("2 instances, 2 planned, 0 failed, 2 resumed"),
            "{text}"
        );
        assert!(text.contains("0 plan files written"), "{text}");
        assert!(text.contains("(2 resumed in place)"), "{text}");

        let stream = std::fs::read_to_string(&ndjson).unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 2, "{stream}");
        for line in lines {
            assert!(line.starts_with("{\"id\":\"d695-w1"), "{line}");
            assert!(line.contains("\"outcome\":\"resumed\""), "{line}");
            assert!(line.contains("\"test_time\":"), "{line}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_fleet_reports_instances_and_summary() {
        let dir = std::env::temp_dir().join(format!("soctdc-fleet-cli-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("batch.txt");
        std::fs::write(&manifest, "design d695 widths=10,12 sample=4 mcand=4\n").unwrap();
        let plans = dir.join("plans");
        let cmd = parse_args(&argv(&format!(
            "fleet --manifest {} --workers 2 --plan-dir {}",
            manifest.display(),
            plans.display()
        )))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("d695-w10-seed2008"), "{text}");
        assert!(text.contains("2 instances, 2 planned, 0 failed"), "{text}");
        assert!(text.contains("budget 2 ="), "{text}");
        assert!(text.contains("2 plan files written"), "{text}");
        assert!(plans.join("d695-w12-seed2008.plan").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_with_failures_exits_with_error_after_reporting() {
        let dir = std::env::temp_dir().join(format!("soctdc-fleet-fail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("batch.txt");
        std::fs::write(
            &manifest,
            "design d695 widths=10 sample=4 mcand=4\n\
             soc /nonexistent/missing.soc widths=8\n",
        )
        .unwrap();
        let cmd = parse_args(&argv(&format!("fleet --manifest {}", manifest.display()))).unwrap();
        let mut out = Vec::new();
        let err = run(&cmd, &mut out).unwrap_err();
        assert!(err.to_string().contains("1 of 2 instances failed"));
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("failed: cannot read"), "{text}");
        assert!(text.contains("1 failed"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_cache_round_trip_reproduces_the_plan() {
        let dir = std::env::temp_dir().join(format!("soctdc-profcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = format!(
            "plan --design d695 --width 12 --sample 4 --mcand 4 --profile-cache {}",
            dir.display()
        );
        // Cold run populates the cache, warm run answers from it; the
        // printed plan must be byte-identical.
        let cmd = parse_args(&argv(&base)).unwrap();
        let mut cold = Vec::new();
        run(&cmd, &mut cold).unwrap();
        let files = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert!(files > 0, "cold run wrote no profile CSVs");
        let mut warm = Vec::new();
        run(&cmd, &mut warm).unwrap();
        // The header's elapsed-time annotation and the cache-stats line
        // legitimately differ (the warm run is the fast, all-hits one);
        // everything else must be identical.
        let strip_varying = |bytes: &[u8]| -> String {
            let text = std::str::from_utf8(bytes).unwrap();
            let (head, rest) = text.split_once('\n').unwrap();
            let head = head.rsplit_once(" (").map_or(head, |(h, _)| h);
            let rest: String = rest
                .lines()
                .filter(|l| !l.starts_with("profile cache:"))
                .collect::<Vec<_>>()
                .join("\n");
            format!("{head}\n{rest}")
        };
        assert_eq!(strip_varying(&cold), strip_varying(&warm));
        let cold_text = String::from_utf8(cold).unwrap();
        let warm_text = String::from_utf8(warm).unwrap();
        assert!(
            cold_text.contains("profile cache: 0 hits, 0 partial, 10 misses"),
            "{cold_text}"
        );
        assert!(
            warm_text.contains("profile cache: 10 hits, 0 partial, 0 misses"),
            "{warm_text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_plan_with_deadline_reports_degraded_outcome() {
        // An already-hopeless 1 ms budget: the plan must still come out,
        // flagged as cut short.
        let cmd = parse_args(&argv(
            "plan --design d695 --width 12 --sample 4 --mcand 4 --deadline 1",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("TAM"), "{text}");
        assert!(
            text.contains("search degraded") || text.contains("search interrupted"),
            "{text}"
        );
    }

    #[test]
    fn missing_resume_file_is_a_run_error() {
        let cmd = parse_args(&argv(
            "plan --design d695 --width 12 --sample 4 --mcand 4 --resume /nonexistent.plan",
        ))
        .unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&cmd, &mut out), Err(CliError::Run(_))));
    }

    #[test]
    fn width_and_ate_conflict() {
        assert!(matches!(
            parse_args(&argv("plan --design d695 --width 8 --ate 8")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn profile_requires_core() {
        assert!(matches!(
            parse_args(&argv("profile --design d695")),
            Err(CliError::Usage(_))
        ));
        let cmd = parse_args(&argv("profile --design d695 --core s838 --max-width 8")).unwrap();
        match cmd {
            Command::Profile(a) => {
                assert_eq!(a.core, "s838");
                assert_eq!(a.max_width, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_bits() {
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("plan --design nope")).is_err());
        assert!(parse_args(&argv("plan --design d695 --bogus 3")).is_err());
        assert!(parse_args(&argv("plan --design d695 --width abc")).is_err());
        assert!(parse_args(&argv("")).is_err());
    }

    #[test]
    fn designs_and_help_parse() {
        assert_eq!(parse_args(&argv("designs")).unwrap(), Command::Designs);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_designs_lists_all() {
        let mut out = Vec::new();
        run(&Command::Designs, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for d in Design::ALL {
            assert!(text.contains(d.name()), "{text}");
        }
    }

    #[test]
    fn run_plan_on_builtin() {
        let cmd = parse_args(&argv(
            "plan --design d695 --width 16 --mode no-tdc --sample 8 --mcand 4 --gantt",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("no-TDC"));
        assert!(text.contains("TAM 0"));
    }

    #[test]
    fn run_profile_on_builtin() {
        let cmd = parse_args(&argv(
            "profile --design d695 --core s13207 --max-width 8 --sample 4",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("profile of s13207"));
    }

    #[test]
    fn run_convert_roundtrip() {
        let cmd = parse_args(&argv("convert --design d695 --to itc02")).unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("SocName d695"));
        assert!(text.contains("TotalModules 11"));
    }

    #[test]
    fn unknown_core_is_a_run_error() {
        let cmd = parse_args(&argv("profile --design d695 --core nope --sample 4")).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&cmd, &mut out), Err(CliError::Run(_))));
    }
}

#[cfg(test)]
mod rtl_stats_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn rtl_command_emits_verilog() {
        let cmd = parse_args(&argv("rtl --chains 64 --module my_decomp")).unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("module my_decomp ("));
        assert!(text.contains("endmodule"));
    }

    #[test]
    fn rtl_requires_chains() {
        assert!(matches!(parse_args(&argv("rtl")), Err(CliError::Usage(_))));
        let zero = parse_args(&argv("rtl --chains 0")).unwrap();
        let mut out = Vec::new();
        assert!(matches!(run(&zero, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn stats_command_reports_slice_statistics() {
        let cmd = parse_args(&argv(
            "stats --design d695 --core s9234 --chains 8 --seed 3",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("mean_care_per_slice"));
        assert!(text.contains("pad_fraction"));
    }

    #[test]
    fn stats_requires_core_and_chains() {
        assert!(parse_args(&argv("stats --design d695 --chains 8")).is_err());
        assert!(parse_args(&argv("stats --design d695 --core s9234")).is_err());
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn plan_writes_file_and_verify_round_trips() {
        let dir = std::env::temp_dir().join("soctdc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let plan_path = dir.join("d695.plan");
        let plan_path = plan_path.to_str().unwrap();

        // Exact evaluation so the verify pass sees matching stream lengths.
        let cmd = parse_args(&argv(&format!(
            "plan --design d695 --width 12 --seed 5 --exact --plan-out {plan_path}"
        )))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("plan written"));

        let cmd = parse_args(&argv(&format!(
            "verify --design d695 --seed 5 --plan {plan_path}"
        )))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("plan verified"));

        // Corrupt the plan: shrink core 0's slot so its exact stream no
        // longer fits — verification must fail with a slot overflow.
        let text = std::fs::read_to_string(plan_path).unwrap();
        let corrupted: String = text
            .lines()
            .map(|l| {
                if l.starts_with("core 0 ") {
                    let mut parts: Vec<&str> = l.split_whitespace().collect();
                    let t = parts.iter().position(|&p| p == "time").unwrap();
                    parts[t + 1] = "1";
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(plan_path, corrupted).unwrap();
        let cmd = parse_args(&argv(&format!(
            "verify --design d695 --seed 5 --plan {plan_path}"
        )))
        .unwrap();
        let mut out = Vec::new();
        assert!(
            run(&cmd, &mut out).is_err(),
            "corrupted plan must not verify"
        );
        let _ = std::fs::remove_file(plan_path);
    }

    #[test]
    fn verify_requires_plan_flag() {
        assert!(matches!(
            parse_args(&argv("verify --design d695")),
            Err(CliError::Usage(_))
        ));
    }
}

#[cfg(test)]
mod truncate_info_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn truncate_requires_depth() {
        assert!(matches!(
            parse_args(&argv("truncate --design d695")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn truncate_runs_and_reports_quality() {
        let cmd = parse_args(&argv(
            "truncate --design d695 --width 12 --mode no-tdc --depth 25000 --sample 4 --mcand 4",
        ))
        .unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("truncation: kept"));
        assert!(text.contains("quality proxy"));
    }

    #[test]
    fn info_prints_per_core_rows() {
        let cmd = parse_args(&argv("info --design d695")).unwrap();
        let mut out = Vec::new();
        run(&cmd, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("s38584"));
        assert!(text.contains("scan cells"));
    }

    #[test]
    fn fdr_and_select_modes_parse() {
        for mode in ["fdr", "select"] {
            let cmd = parse_args(&argv(&format!(
                "plan --design d695 --width 8 --mode {mode}"
            )))
            .unwrap();
            match cmd {
                Command::Plan(a) => assert_eq!(a.mode, mode),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
