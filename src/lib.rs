//! Facade crate re-exporting the whole SOC test-planning stack.
//!
//! This is a reproduction of *"Test-Architecture Optimization and Test
//! Scheduling for SOCs with Core-Level Expansion of Compressed Test
//! Patterns"* (A. Larsson, E. Larsson, K. Chakrabarty, P. Eles, Z. Peng —
//! DATE 2008). See `README.md` for the architecture overview, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the reproduced tables
//! and figures.
//!
//! The individual layers are available as their own crates and re-exported
//! here:
//!
//! * [`model`] — cores, SOCs, ternary test cubes, benchmark designs.
//! * [`wrapper`] — IEEE 1500-style wrapper-chain design.
//! * [`selenc`] — selective-encoding compression and its decompressor.
//! * [`lfsr`] — LFSR-reseeding compression baseline.
//! * [`tam`] — TAM partitioning and SOC test scheduling.
//! * [`planner`] — the paper's co-optimization of all of the above.
//! * [`fleet`] — batch planning of design-instance manifests with
//!   two-level work-stealing and shared bounded caches.
//!
//! # Examples
//!
//! ```
//! use soc_tdc::model::benchmarks::Design;
//! use soc_tdc::planner::{PlanRequest, Planner};
//!
//! let soc = Design::D695.build_with_cubes(1);
//! let plan = Planner::per_core_tdc().plan(&soc, &PlanRequest::tam_width(16))?;
//! assert!(plan.test_time > 0);
//! # Ok::<(), soc_tdc::planner::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod report;

pub use fleet;
pub use lfsr;
pub use selenc;
pub use soc_model as model;
pub use tam;
pub use tdcsoc as planner;
pub use wrapper;
