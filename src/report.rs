//! Small formatting helpers shared by the experiment binaries.

/// Formats an integer with thousands separators (`1234567` → `1,234,567`).
///
/// # Examples
///
/// ```
/// assert_eq!(soc_tdc::report::group_digits(1234567), "1,234,567");
/// assert_eq!(soc_tdc::report::group_digits(42), "42");
/// ```
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio `a / b` with two decimals, or `"-"` when `b == 0`.
///
/// ```
/// assert_eq!(soc_tdc::report::ratio(30, 20), "1.50");
/// assert_eq!(soc_tdc::report::ratio(1, 0), "-");
/// ```
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "-".to_string()
    } else {
        format!("{:.2}", a as f64 / b as f64)
    }
}

/// Formats a bit count as Mbit with two decimals.
///
/// ```
/// assert_eq!(soc_tdc::report::mbits(2_000_000), "2.00");
/// ```
pub fn mbits(bits: u64) -> String {
    format!("{:.2}", bits as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_grouped_in_threes() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_000_000_007), "1,000,000,007");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 2), "2.50");
        assert_eq!(ratio(5, 0), "-");
    }

    #[test]
    fn mbits_scales() {
        assert_eq!(mbits(500_000), "0.50");
    }
}
