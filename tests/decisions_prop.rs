//! Property tests over the planner's decision tables: for arbitrary small
//! cores, the per-width operating points must honor the structural
//! invariants the scheduler depends on.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_tdc::model::{Core, CubeSynthesis};
use soc_tdc::planner::{CompressionMode, DecisionConfig, DecisionTable, Technique};

fn prepared_core() -> impl Strategy<Value = Core> {
    (
        50u32..800,   // cells
        2u32..64,     // max chains
        1u32..12,     // patterns
        0.02f64..0.7, // density
        any::<u64>(), // seed
    )
        .prop_map(|(cells, max_chains, patterns, density, seed)| {
            let mut core = Core::builder("prop")
                .inputs(6)
                .outputs(6)
                .flexible_cells(cells, max_chains)
                .pattern_count(patterns)
                .care_density(density)
                .build()
                .expect("valid core");
            let ts = CubeSynthesis::new(density).synthesize(&core, seed);
            core.attach_test_set(ts).expect("shape matches");
            core
        })
}

fn cfg() -> DecisionConfig {
    DecisionConfig {
        pattern_sample: Some(4),
        m_candidates: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw tables are monotone non-increasing in width, and every decision
    /// is populated.
    #[test]
    fn raw_tables_are_monotone(core in prepared_core()) {
        let t = DecisionTable::build(&core, CompressionMode::None, 10, &cfg());
        let mut prev = u64::MAX;
        for w in 1..=10 {
            let d = t.decision(w).expect("raw always feasible");
            prop_assert!(d.test_time <= prev);
            prop_assert!(d.decompressor.is_none());
            prop_assert_eq!(d.technique, Technique::Raw);
            prop_assert!(d.volume_bits > 0);
            prev = d.test_time;
        }
    }

    /// Per-core TDC (with bypass) never loses to raw at any width, and the
    /// claimed decompressor geometry is consistent.
    #[test]
    fn per_core_dominates_raw(core in prepared_core()) {
        let raw = DecisionTable::build(&core, CompressionMode::None, 10, &cfg());
        let tdc = DecisionTable::build(&core, CompressionMode::PerCore, 10, &cfg());
        for w in 1..=10 {
            let r = raw.decision(w).unwrap();
            let t = tdc.decision(w).unwrap();
            prop_assert!(t.test_time <= r.test_time, "w={}", w);
            if let Some((dw, m)) = t.decompressor {
                prop_assert!(dw <= w, "decompressor input exceeds the TAM");
                prop_assert!(m >= 1);
                prop_assert_eq!(t.technique, Technique::SelectiveEncoding);
            } else {
                prop_assert_eq!(t.technique, Technique::Raw);
            }
        }
    }

    /// Select dominates each constituent technique pointwise.
    #[test]
    fn select_is_the_pointwise_minimum(core in prepared_core()) {
        let sel = DecisionTable::build(&core, CompressionMode::Select, 8, &cfg());
        let pc = DecisionTable::build(&core, CompressionMode::PerCore, 8, &cfg());
        let fd = DecisionTable::build(&core, CompressionMode::Fdr, 8, &cfg());
        for w in 1..=8 {
            let s = sel.decision(w).unwrap().test_time;
            prop_assert!(s <= pc.decision(w).unwrap().test_time, "w={}", w);
            prop_assert!(s <= fd.decision(w).unwrap().test_time, "w={}", w);
            prop_assert_eq!(
                s,
                pc.decision(w).unwrap().test_time.min(fd.decision(w).unwrap().test_time)
            );
        }
    }

    /// Per-TAM decisions exist at every width and use the full TAM as the
    /// decompressor input (above the minimum code width).
    #[test]
    fn per_tam_uses_the_full_tam(core in prepared_core()) {
        let t = DecisionTable::build(&core, CompressionMode::PerTam, 8, &cfg());
        for w in 3..=8u32 {
            let d = t.decision(w).unwrap();
            let (dw, _) = d.decompressor.expect("per-TAM always compresses at w >= 3");
            prop_assert_eq!(dw, w);
        }
    }

    /// Fixed-width tables are constant above their pin and empty below it.
    #[test]
    fn fixed_width_is_flat(core in prepared_core()) {
        let t = DecisionTable::build(&core, CompressionMode::FixedWidth(4), 8, &cfg());
        for w in 1..=3u32 {
            prop_assert!(t.decision(w).is_none(), "w={}", w);
        }
        if let Some(base) = t.decision(4) {
            for w in 5..=8u32 {
                prop_assert_eq!(t.decision(w), Some(base));
            }
        }
    }
}
