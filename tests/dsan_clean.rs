//! Clean-run proof for the determinism sanitizer (DESIGN.md §18): a real
//! fleet workload — manifest parse, two-level work-stealing dispatch,
//! per-core table builds, TAM portfolio/anneal search — runs race-free
//! under dsan at workers 1, 2, and 4, and the three reports are
//! byte-identical. Detection is structural (same-run jobs are unordered
//! by construction), so a clean report here certifies the absence of
//! unordered conflicting accesses, not a lucky interleaving.

#![forbid(unsafe_code)]

use fleet::{FleetOptions, Manifest};

#[test]
fn fleet_scenario_is_race_free_at_workers_1_2_4() {
    parpool::dsan::set_enabled(true);
    // Drain anything a prior in-process run recorded.
    let _ = parpool::dsan::take_report();

    let manifest = Manifest::parse(
        "design d695 widths=8,12 sample=2 mcand=2\n\
         design system1 widths=12 sample=2 mcand=2\n",
    )
    .expect("manifest parses");

    let mut rendered = Vec::new();
    for workers in [1usize, 2, 4] {
        let report = fleet::run_fleet(
            &manifest,
            &FleetOptions {
                workers,
                ..FleetOptions::default()
            },
        );
        assert_eq!(report.summary.failed, 0, "workers={workers}");
        assert_eq!(report.summary.planned, manifest.len(), "workers={workers}");
        let dsan = parpool::dsan::take_report();
        assert!(
            dsan.is_clean(),
            "workers={workers} must be race-free:\n{dsan}"
        );
        rendered.push(dsan.to_string());
    }
    assert_eq!(rendered[0], "dsan: clean\n");
    assert!(
        rendered.windows(2).all(|w| w[0] == w[1]),
        "reports must be byte-identical across worker counts: {rendered:?}"
    );
}
