//! Property-based tests of the batched bit-parallel decompressor emulator
//! and the incremental (fingerprint-keyed) profile rebuild path: for
//! arbitrary cores, cube sets, decompressor widths, and encoder policies,
//! the packed paths must be bit-identical to their scalar oracles —
//! including which error a corrupted stream reports — and a warm
//! incremental plan after a single-core edit must equal a cold rebuild.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::{Core, Soc, Trit, TritVec};
use soc_tdc::planner::{DecisionConfig, PlanControl, PlanRequest, Planner};
use soc_tdc::selenc::{
    encode_cube, encode_slices_packed, verify_cube_stream, verify_stream, verify_stream_packed,
    Encoder, SliceCode,
};
use soc_tdc::wrapper::{design_wrapper, SliceMatrix};

/// Strategy: a ternary cube of the given length with ~`density` care bits.
fn cube(len: usize, density: f64) -> impl Strategy<Value = TritVec> {
    let x_weight = ((1.0 - density) * 50.0) as u32 + 1;
    let care_weight = (density * 25.0) as u32 + 1;
    proptest::collection::vec(
        prop_oneof![
            x_weight => Just(Trit::X),
            care_weight => Just(Trit::Zero),
            care_weight => Just(Trit::One),
        ],
        len,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// A small hard core with arbitrary chain structure, plus a cube set.
fn core_and_cubes() -> impl Strategy<Value = (Core, Vec<TritVec>)> {
    (
        proptest::collection::vec(1u32..40, 1..6), // scan chains
        0u32..12,                                  // inputs
        0u32..12,                                  // outputs
        0.02f64..0.9,                              // care density
    )
        .prop_flat_map(|(chains, inputs, outputs, density)| {
            let core = Core::builder("prop")
                .inputs(inputs)
                .outputs(outputs)
                .fixed_chains(chains)
                .pattern_count(1)
                .build()
                .expect("valid core");
            let len = core.scan_load_bits() as usize;
            proptest::collection::vec(cube(len, density), 1..4)
                .prop_map(move |cs| (core.clone(), cs))
        })
}

/// Per-core spec for the incremental-rebuild property: chain lengths and
/// a synthesized pattern count.
type CoreSpec = (Vec<u32>, u32, u32, u32);

fn build_soc(specs: &[CoreSpec], seed: u64) -> Soc {
    let cores = specs
        .iter()
        .enumerate()
        .map(|(i, (chains, inputs, outputs, patterns))| {
            Core::builder(format!("c{i}"))
                .inputs(*inputs)
                .outputs(*outputs)
                .fixed_chains(chains.clone())
                .pattern_count(*patterns)
                .build()
                .expect("valid core")
        })
        .collect();
    let mut soc = Soc::new("prop", cores);
    synthesize_missing_test_sets(&mut soc, seed);
    soc
}

fn small_decisions() -> DecisionConfig {
    DecisionConfig {
        pattern_sample: Some(4),
        m_candidates: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The packed slice emitter is bit-identical to the scalar encoder for
    /// both encoder policies (group copy on and off).
    #[test]
    fn packed_emitter_matches_scalar_encoder(
        (core, cubes) in core_and_cubes(),
        m in 1u32..24,
    ) {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let mut mat = SliceMatrix::new();
        for cube in &cubes {
            design.fill_slice_matrix(cube, &mut mat);
            for group_copy in [true, false] {
                let enc = if group_copy {
                    Encoder::new(code)
                } else {
                    Encoder::single_bit_only(code)
                };
                let scalar = encode_cube(&enc, &design, cube);
                let mut packed = Vec::new();
                encode_slices_packed(code, group_copy, &mat, &mut packed);
                prop_assert_eq!(packed, scalar, "group_copy={}", group_copy);
            }
        }
    }

    /// On valid streams the packed verifier accepts exactly when the scalar
    /// oracle does, and reports the true codeword count.
    #[test]
    fn packed_verifier_accepts_valid_streams(
        (core, cubes) in core_and_cubes(),
        m in 1u32..24,
    ) {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        for cube in &cubes {
            let words = encode_cube(&enc, &design, cube);
            let expected: Vec<TritVec> = design.slices(cube).collect();
            prop_assert_eq!(verify_stream(code, words.iter().copied(), &expected), Ok(()));
            let n = verify_cube_stream(&design, cube).expect("packed path verifies");
            prop_assert_eq!(n, words.len() as u64);
        }
    }

    /// Corrupting one codeword anywhere in the stream produces the *same*
    /// verdict from both verifiers — same acceptance, or the same
    /// `StreamError` variant with the same payload (error priority is part
    /// of the contract).
    #[test]
    fn packed_verifier_matches_scalar_on_corrupted_streams(
        (core, cubes) in core_and_cubes(),
        m in 1u32..24,
        pick in 0usize..1024,
        kind in 0u8..3,
        mask in 1u32..u32::MAX,
    ) {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        for cube in &cubes {
            let mut words = encode_cube(&enc, &design, cube);
            prop_assert!(!words.is_empty());
            let i = pick % words.len();
            match kind {
                0 => words[i].mode = !words[i].mode,
                1 => words[i].last = !words[i].last,
                _ => {
                    let keep = (1u32 << code.data_bits()) - 1;
                    let flip = mask & keep;
                    words[i].data ^= if flip == 0 { 1 } else { flip };
                }
            }
            let expected: Vec<TritVec> = design.slices(cube).collect();
            let scalar = verify_stream(code, words.iter().copied(), &expected);
            let mut mat = SliceMatrix::new();
            design.fill_slice_matrix(cube, &mut mat);
            let packed = verify_stream_packed(code, words.iter().copied(), &mat);
            prop_assert_eq!(scalar, packed);
        }
    }
}

proptest! {
    // Each case runs three full plans; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After a random single-core edit (content change) and a random width
    /// change, a warm incremental plan over the surviving cache entries is
    /// identical to a cold rebuild, and only the edited core misses.
    #[test]
    fn incremental_rebuild_matches_cold_rebuild(
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(2u32..24, 1..4), // chains
                0u32..6,                                   // inputs
                0u32..6,                                   // outputs
                2u32..5,                                   // patterns
            ),
            2..4,
        ),
        w1 in 6u32..11,
        w2 in 6u32..11,
        edit in 0usize..16,
        seed in 1u64..1_000,
    ) {
        let planner = Planner::per_core_tdc();
        let cache = std::env::temp_dir().join("soctdc-emulate-prop-cache");
        let _ = std::fs::remove_dir_all(&cache);
        let warm_control = PlanControl::default().cache_profiles_in(&cache, "p");

        // Populate the cache at width w1.
        let soc = build_soc(&specs, seed);
        let req1 = PlanRequest::tam_width(w1).with_decisions(small_decisions());
        let (_, stats) = planner
            .plan_with_stats(&soc, &req1, &warm_control)
            .expect("baseline plan");
        prop_assert_eq!(stats.profile_misses, specs.len());

        // Edit one core's content (its synthesized test set changes with
        // the pattern count) and replan at w2 against the warm cache.
        let mut edited = specs.clone();
        edited[edit % specs.len()].3 += 3;
        let soc2 = build_soc(&edited, seed);
        let req2 = PlanRequest::tam_width(w2).with_decisions(small_decisions());
        let (warm_plan, warm_stats) = planner
            .plan_with_stats(&soc2, &req2, &warm_control)
            .expect("incremental plan");

        // Cold rebuild of the edited SOC in a fresh cache.
        let cold_dir = std::env::temp_dir().join("soctdc-emulate-prop-cache-cold");
        let _ = std::fs::remove_dir_all(&cold_dir);
        let cold_control = PlanControl::default().cache_profiles_in(&cold_dir, "p");
        let (cold_plan, _) = planner
            .plan_with_stats(&soc2, &req2, &cold_control)
            .expect("cold plan");

        // `cpu_time` is wall-clock bookkeeping, not plan content.
        let mut warm_plan = warm_plan;
        let mut cold_plan = cold_plan;
        warm_plan.cpu_time = std::time::Duration::ZERO;
        cold_plan.cpu_time = std::time::Duration::ZERO;
        prop_assert_eq!(warm_plan, cold_plan);
        prop_assert_eq!(warm_stats.profile_misses, 1, "only the edited core misses");
        let untouched = specs.len() - 1;
        if w2 <= w1 {
            prop_assert_eq!(warm_stats.profile_hits, untouched);
            prop_assert_eq!(warm_stats.profile_partial_hits, 0);
        } else {
            prop_assert_eq!(warm_stats.profile_hits + warm_stats.profile_partial_hits, untouched);
        }

        let _ = std::fs::remove_dir_all(&cache);
        let _ = std::fs::remove_dir_all(&cold_dir);
    }
}
