//! End-to-end integration tests spanning every crate: benchmark designs →
//! cube synthesis → wrapper/decompressor co-design → TAM optimization →
//! schedule, checked for internal consistency and determinism.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::{self, Design};
use soc_tdc::model::format::{parse_soc, write_soc};
use soc_tdc::model::{generator::synthesize_missing_test_sets, Core, Soc};
use soc_tdc::planner::{DecisionConfig, PlanRequest, Planner};
use soc_tdc::tam::render_gantt;

/// A reduced industrial-like SOC small enough for debug-build tests.
fn small_industrial() -> Soc {
    let mk = |name: &str, cells: u32, patterns: u32, density: f64| {
        Core::builder(name)
            .inputs(20)
            .outputs(20)
            .flexible_cells(cells, 256)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap()
    };
    let mut soc = Soc::new(
        "mini-system",
        vec![
            mk("m1", 1_500, 30, 0.03),
            mk("m2", 2_400, 24, 0.02),
            mk("m3", 900, 40, 0.05),
            mk("m4", 3_000, 20, 0.015),
        ],
    );
    synthesize_missing_test_sets(&mut soc, 99);
    soc
}

fn fast(w: u32) -> PlanRequest {
    PlanRequest::tam_width(w).with_decisions(DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    })
}

#[test]
fn full_pipeline_on_d695() {
    let soc = Design::D695.build_with_cubes(1);
    let plan = Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap();
    assert_eq!(plan.core_settings.len(), 10);
    assert_eq!(plan.test_time, plan.schedule.makespan());
    assert_eq!(
        plan.schedule.total_width(),
        16,
        "the whole budget is partitioned"
    );
    // Volumes and times aggregate consistently.
    let vol: u64 = plan.core_settings.iter().map(|s| s.volume_bits).sum();
    assert_eq!(vol, plan.volume_bits);
    for s in &plan.core_settings {
        assert!(s.start + s.test_time <= plan.test_time);
    }
}

#[test]
fn tdc_dominates_no_tdc_across_budgets() {
    let soc = small_industrial();
    for w in [6u32, 12, 20, 32] {
        let raw = Planner::no_tdc().plan(&soc, &fast(w)).unwrap();
        let tdc = Planner::per_core_tdc().plan(&soc, &fast(w)).unwrap();
        assert!(
            tdc.test_time <= raw.test_time,
            "w={w}: TDC {} vs raw {}",
            tdc.test_time,
            raw.test_time
        );
        assert!(tdc.volume_bits <= raw.volume_bits, "w={w}");
    }
}

#[test]
fn industrial_reduction_is_order_of_magnitude() {
    let soc = small_industrial();
    let raw = Planner::no_tdc().plan(&soc, &fast(24)).unwrap();
    let tdc = Planner::per_core_tdc().plan(&soc, &fast(24)).unwrap();
    let speedup = raw.test_time as f64 / tdc.test_time as f64;
    assert!(speedup > 4.0, "speedup only {speedup:.1}x");
    assert!(
        tdc.compressed_core_count() == soc.core_count(),
        "every sparse core should get a decompressor"
    );
}

#[test]
fn planning_is_deterministic() {
    let a = {
        let soc = small_industrial();
        Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap()
    };
    let b = {
        let soc = small_industrial();
        Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap()
    };
    assert_eq!(a.test_time, b.test_time);
    assert_eq!(a.volume_bits, b.volume_bits);
    assert_eq!(a.core_settings, b.core_settings);
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn different_seeds_change_cubes_but_not_validity() {
    for seed in [1u64, 2, 3] {
        let soc = Design::D695.build_with_cubes(seed);
        let plan = Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap();
        assert!(plan.test_time > 0);
    }
}

#[test]
fn benchmark_designs_roundtrip_through_the_text_format() {
    for design in Design::ALL {
        let soc = design.build();
        let text = write_soc(&soc);
        let reparsed = parse_soc(&text).unwrap();
        assert_eq!(reparsed, soc, "{design}");
    }
}

#[test]
fn all_planner_modes_produce_valid_plans() {
    let soc = small_industrial();
    let planners = [
        Planner::no_tdc(),
        Planner::per_core_tdc(),
        Planner::per_tam_tdc(),
        Planner::fixed_width_tdc(4),
        Planner::reseeding_tdc(),
    ];
    for p in planners {
        let plan = p.plan(&soc, &fast(16)).unwrap_or_else(|e| {
            panic!("{:?} failed: {e}", p.mode());
        });
        assert_eq!(plan.core_settings.len(), soc.core_count(), "{:?}", p.mode());
        assert!(plan.test_time > 0);
        assert!(plan.volume_bits > 0);
    }
}

#[test]
fn gantt_rendering_covers_all_tams() {
    let soc = small_industrial();
    let plan = Planner::per_core_tdc().plan(&soc, &fast(12)).unwrap();
    let mut cost = soc_tdc::tam::CostModel::new(12);
    for s in &plan.core_settings {
        let mut row = vec![None; 12];
        for w in s.tam_width..=12 {
            row[(w - 1) as usize] = Some(s.test_time);
        }
        cost.push_core(&s.name, row);
    }
    let chart = render_gantt(&plan.schedule, &cost, 40);
    assert_eq!(
        chart.lines().count(),
        plan.tam_count() + 1,
        "one row per TAM plus the axis"
    );
}

#[test]
fn ckt_7_shows_the_papers_non_monotonicity() {
    // The pivotal observation (Fig. 2): at a fixed TAM width, test time is
    // not monotone in the chain count — scaled down for debug builds.
    let mut soc = Soc::new("nm", vec![benchmarks::ckt(3)]);
    synthesize_missing_test_sets(&mut soc, 2008);
    let core = &soc.cores()[0];
    let times: Vec<u64> = (64..=127)
        .filter_map(|m| soc_tdc::selenc::evaluate_point(core, m, Some(6)))
        .map(|c| c.test_time)
        .collect();
    assert!(times.len() > 30);
    let increases = times.windows(2).filter(|w| w[1] > w[0]).count();
    let decreases = times.windows(2).filter(|w| w[1] < w[0]).count();
    assert!(
        increases > 0 && decreases > 0,
        "expected non-monotonic behaviour, got {increases} ups / {decreases} downs"
    );
}
