//! Integration tests for the extension features working *together* on
//! planner output: response compaction, truncation with quality tracking,
//! multi-frequency TAMs, conflict groups, and RTL emission.

#![forbid(unsafe_code)]

use soc_tdc::model::benchmarks::Design;
use soc_tdc::model::compaction::{compact, covers};
use soc_tdc::planner::{
    plan_response_compaction, truncate_to_fit, AteSpec, DecisionConfig, PlanRequest, Planner,
};
use soc_tdc::selenc::generate_testbench;
use soc_tdc::selenc::SliceCode;
use soc_tdc::tam::{
    conflict_schedule, multifreq_schedule, validate_multifreq, Conflicts, CostModel, FreqTam,
};
use soc_tdc::wrapper::{design_wrapper, estimate_scan_power, Fill};

fn fast(w: u32) -> PlanRequest {
    PlanRequest::tam_width(w).with_decisions(DecisionConfig {
        pattern_sample: Some(8),
        m_candidates: 8,
    })
}

#[test]
fn response_compaction_covers_the_whole_plan() {
    let soc = Design::System1.build_with_cubes(4);
    let plan = Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap();
    let rp = plan_response_compaction(&soc, &plan, 1e-8);
    assert_eq!(rp.compactors.len(), soc.core_count());
    // Each MISR is wide enough for its core's unload chains and can absorb
    // a full response stream without panicking.
    for (i, c) in rp.compactors.iter().enumerate() {
        let mut misr = rp.misr_for(i);
        for cycle in 0..50 {
            let slice: Vec<bool> = (0..c.inputs).map(|k| (k + cycle) % 3 == 0).collect();
            misr.absorb(&slice);
        }
        assert_eq!(misr.cycles(), 50);
    }
}

#[test]
fn truncation_quality_chain() {
    let soc = Design::D695.build_with_cubes(4);
    let req = fast(12);
    let full = Planner::no_tdc().plan(&soc, &req).unwrap();
    let spec = AteSpec {
        channels: 64,
        memory_depth: full.test_time * 2 / 3,
        clock_hz: 100_000_000,
    };
    let t = truncate_to_fit(&soc, &Planner::no_tdc(), &req, &spec).unwrap();
    assert!(spec.fit(&t.plan).fits);
    let q = t.quality_proxy(&soc);
    // These cubes have uniform density, so the care-bit quality proxy
    // tracks the kept-pattern fraction closely (it only *beats* it under
    // density decay — covered in the tdcsoc unit tests).
    assert!(
        (q - t.kept_fraction()).abs() < 0.1,
        "quality {q:.3} vs kept {:.3}",
        t.kept_fraction()
    );
    assert!(q > 0.0 && q <= 1.0);
    // The truncated SOC is itself plannable and coherent.
    assert_eq!(t.soc.core_count(), soc.core_count());
}

#[test]
fn planner_cost_rows_feed_multifreq_and_conflicts() {
    let soc = Design::D695.build_with_cubes(4);
    let plan = Planner::no_tdc().plan(&soc, &fast(12)).unwrap();
    let max_w = plan.schedule.tam_widths().iter().copied().max().unwrap();
    let mut cost = CostModel::new(max_w);
    for s in &plan.core_settings {
        let mut row = vec![None; max_w as usize];
        for w in s.tam_width..=max_w {
            row[(w - 1) as usize] = Some(s.test_time);
        }
        cost.push_core(&s.name, row);
    }
    let widths: Vec<u32> = plan.schedule.tam_widths().to_vec();

    // Multi-frequency: every core tolerates 2×, two giants only 1×.
    let caps: Vec<u32> = (0..cost.core_count())
        .map(|i| if i < 2 { 1 } else { 2 })
        .collect();
    let tams: Vec<FreqTam> = widths
        .iter()
        .map(|&w| FreqTam { width: w, freq: 1 })
        .collect();
    let s1 = multifreq_schedule(&cost, &tams, &caps).unwrap();
    validate_multifreq(&s1, &cost, &tams, &caps).unwrap();

    // Conflict groups: a hierarchical parent serializes cores 3..6.
    let conflicts = Conflicts::from_groups(&[vec![3, 4, 5]]);
    let s2 = conflict_schedule(&cost, &widths, &conflicts).unwrap();
    conflicts.validate(&s2).unwrap();
    s2.validate(&cost).unwrap();
}

#[test]
fn compaction_composes_with_power_estimation() {
    let soc = Design::D695.build_with_cubes(4);
    let (_, core) = soc.core_by_name("s13207").unwrap();
    let ts = core.test_set().unwrap();
    let c = compact(ts);
    assert!(covers(ts, &c));
    // Power estimation works on both original and compacted sets.
    let design = design_wrapper(core, 8);
    let p_orig = estimate_scan_power(&design, ts, Fill::MinTransition, 8);
    let p_comp = estimate_scan_power(&design, &c.test_set, Fill::MinTransition, 8);
    assert!(p_orig.average > 0.0 && p_comp.average > 0.0);
    // Compacted cubes are denser → more switching per cycle.
    assert!(p_comp.average >= p_orig.average * 0.9);
}

#[test]
fn rtl_testbench_for_a_planned_decompressor() {
    let soc = Design::System1.build_with_cubes(4);
    let plan = Planner::per_core_tdc().plan(&soc, &fast(16)).unwrap();
    let s = plan
        .core_settings
        .iter()
        .find(|s| s.decompressor.is_some())
        .expect("industrial cores engage TDC");
    let (_, m) = s.decompressor.unwrap();
    let core = soc.core(s.core).unwrap();
    let design = design_wrapper(core, m);
    let cube = core.test_set().unwrap().pattern(0).unwrap();
    let slices: Vec<_> = design.slices(cube).take(4).collect();
    let code = SliceCode::for_chains(design.chain_count());
    let tb = generate_testbench(code, "planned_decomp", &slices);
    assert!(tb.contains("module planned_decomp_tb;"));
    assert_eq!(
        tb.matches("check(").count(),
        4 + 1 /* task definition */
    );
}
