//! Failure-injection tests: corrupted artifacts must be *detected*, never
//! silently accepted and never cause panics in parsing paths.

use proptest::prelude::*;

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::{Core, Soc};
use soc_tdc::planner::{
    export_image, parse_plan, verify_image, write_plan, ImageError, PlanRequest, Planner,
};

fn small_soc(seed: u64) -> Soc {
    let mk = |name: &str, cells: u32, patterns: u32, density: f64| {
        Core::builder(name)
            .inputs(6)
            .outputs(6)
            .flexible_cells(cells, 32)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap()
    };
    let mut soc = Soc::new(
        "fi",
        vec![mk("a", 150, 4, 0.3), mk("b", 220, 3, 0.2)],
    );
    synthesize_missing_test_sets(&mut soc, seed);
    soc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An image exported from *different* cubes (a foreign seed) must be
    /// rejected when verified against the original SOC — with the typed
    /// care-bit violation, not a panic or a false pass.
    #[test]
    fn foreign_images_are_rejected(seed in 0u64..500) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(8))
            .unwrap();
        // Sanity: the honest image verifies.
        let honest = export_image(&soc, &plan).unwrap();
        verify_image(&honest, &soc, &plan).unwrap();

        // The same plan executed with another seed's cubes carries
        // different stimulus bits; with hundreds of care bits per core the
        // chance of accidental agreement is negligible.
        let other = small_soc(seed.wrapping_add(1));
        let foreign = export_image(&other, &plan).unwrap();
        let err = verify_image(&foreign, &soc, &plan).unwrap_err();
        prop_assert!(
            matches!(err, ImageError::CareBitViolated { .. }),
            "unexpected error {err}"
        );
    }

    /// Randomly mutated plan files either parse to a structurally valid
    /// plan or fail with a typed error — never panic.
    #[test]
    fn plan_file_mutations_never_panic(
        seed in 0u64..100,
        line_no in 0usize..12,
        mutation in "[a-z0-9 ]{0,20}",
    ) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(6))
            .unwrap();
        let text = write_plan(&plan);
        let mutated: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| if i == line_no { mutation.clone() } else { l.to_string() })
            .collect();
        let _ = parse_plan(&mutated.join("\n")); // must not panic
    }

    /// Truncated plan files never panic either.
    #[test]
    fn truncated_plan_files_never_panic(seed in 0u64..50, keep in 0usize..400) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(6))
            .unwrap();
        let text = write_plan(&plan);
        let cut = keep.min(text.len());
        // Cut at a char boundary.
        let mut cut = cut;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_plan(&text[..cut]);
    }
}

/// Deterministic, direct corruption check through the public API: a plan
/// whose declared per-core time is shrunk must be rejected at export.
#[test]
fn shrunk_slots_are_rejected_at_export() {
    let soc = small_soc(7);
    let plan = Planner::per_core_tdc()
        .plan(&soc, &PlanRequest::tam_width(8).exact())
        .unwrap();
    let text = write_plan(&plan);
    let corrupted: String = text
        .lines()
        .map(|l| {
            if l.starts_with("core 0 ") {
                let mut parts: Vec<&str> = l.split_whitespace().collect();
                let t = parts.iter().position(|&p| p == "time").unwrap();
                parts[t + 1] = "2";
                parts.join(" ")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let bad_plan = parse_plan(&corrupted).unwrap();
    assert!(matches!(
        export_image(&soc, &bad_plan),
        Err(ImageError::SlotOverflow { .. })
    ));
}
