//! Failure-injection tests: corrupted artifacts must be *detected*, never
//! silently accepted and never cause panics in parsing paths.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::itc02::parse_itc02;
use soc_tdc::model::{Core, Soc};
use soc_tdc::planner::{
    export_image, parse_plan, verify_image, write_plan, ImageError, PlanRequest, Planner,
};
use soc_tdc::selenc::{verify_stream, Codeword, Encoder, SliceCode, StreamError};

fn small_soc(seed: u64) -> Soc {
    let mk = |name: &str, cells: u32, patterns: u32, density: f64| {
        Core::builder(name)
            .inputs(6)
            .outputs(6)
            .flexible_cells(cells, 32)
            .pattern_count(patterns)
            .care_density(density)
            .build()
            .unwrap()
    };
    let mut soc = Soc::new("fi", vec![mk("a", 150, 4, 0.3), mk("b", 220, 3, 0.2)]);
    synthesize_missing_test_sets(&mut soc, seed);
    soc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An image exported from *different* cubes (a foreign seed) must be
    /// rejected when verified against the original SOC — with the typed
    /// care-bit violation, not a panic or a false pass.
    #[test]
    fn foreign_images_are_rejected(seed in 0u64..500) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(8))
            .unwrap();
        // Sanity: the honest image verifies.
        let honest = export_image(&soc, &plan).unwrap();
        verify_image(&honest, &soc, &plan).unwrap();

        // The same plan executed with another seed's cubes carries
        // different stimulus bits; with hundreds of care bits per core the
        // chance of accidental agreement is negligible.
        let other = small_soc(seed.wrapping_add(1));
        let foreign = export_image(&other, &plan).unwrap();
        let err = verify_image(&foreign, &soc, &plan).unwrap_err();
        prop_assert!(
            matches!(err, ImageError::CareBitViolated { .. }),
            "unexpected error {err}"
        );
    }

    /// Randomly mutated plan files either parse to a structurally valid
    /// plan or fail with a typed error — never panic.
    #[test]
    fn plan_file_mutations_never_panic(
        seed in 0u64..100,
        line_no in 0usize..12,
        mutation in "[a-z0-9 ]{0,20}",
    ) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(6))
            .unwrap();
        let text = write_plan(&plan);
        let mutated: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| if i == line_no { mutation.clone() } else { l.to_string() })
            .collect();
        let _ = parse_plan(&mutated.join("\n")); // must not panic
    }

    /// Truncated plan files never panic either.
    #[test]
    fn truncated_plan_files_never_panic(seed in 0u64..50, keep in 0usize..400) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(6))
            .unwrap();
        let text = write_plan(&plan);
        let cut = keep.min(text.len());
        // Cut at a char boundary.
        let mut cut = cut;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_plan(&text[..cut]);
    }

    /// Numeric fields of a plan file replaced by extreme values (u64::MAX
    /// neighbourhood) must never panic — overflow in the re-validation
    /// arithmetic surfaces as a typed parse error instead.
    #[test]
    fn extreme_numbers_in_plan_files_never_panic(
        seed in 0u64..20,
        field in 0usize..24,
        value in prop_oneof![
            Just(u64::MAX),
            Just(u64::MAX - 1),
            Just(u64::MAX / 2 + 1),
            any::<u64>(),
        ],
    ) {
        let soc = small_soc(seed);
        let plan = Planner::no_tdc()
            .plan(&soc, &PlanRequest::tam_width(6))
            .unwrap();
        let text = write_plan(&plan);
        // Replace the `field`-th number in the file with the hostile value.
        let mut seen = 0usize;
        let mutated: String = text
            .split_inclusive(char::is_whitespace)
            .map(|tok| {
                let body = tok.trim_end();
                let tail = &tok[body.len()..];
                if body.chars().all(|c| c.is_ascii_digit()) && !body.is_empty() {
                    seen += 1;
                    if seen - 1 == field {
                        return format!("{value}{tail}");
                    }
                }
                tok.to_string()
            })
            .collect();
        // Typed rejection is the expected outcome; when the mutation still
        // parses, downstream export must also hold up without panicking.
        if let Ok(plan) = parse_plan(&mutated) {
            let _ = export_image(&soc, &plan);
        }
    }

    /// Single-bit flips injected into a compressed codeword stream are
    /// either rejected with a typed [`StreamError`] or decode to slices
    /// that still honor every care bit. Never a panic, never a silent
    /// care-bit violation.
    #[test]
    fn bit_flipped_codeword_streams_are_detected_or_harmless(
        m in 6u32..24,
        seed in 0u64..200,
        word_pick in 0usize..64,
        bit_pick in 0u32..8,
    ) {
        let code = SliceCode::for_chains(m);
        // A couple of pseudo-random ternary slices from the seed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(m as u64);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cubes: Vec<soc_tdc::model::TritVec> = (0..3)
            .map(|_| {
                (0..m)
                    .map(|_| match next() % 3 {
                        0 => 'X',
                        1 => '0',
                        _ => '1',
                    })
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        let enc = Encoder::new(code);
        let words: Vec<Codeword> =
            cubes.iter().flat_map(|c| enc.encode_slice(c)).collect();
        // Honest stream verifies.
        verify_stream(code, words.iter().copied(), &cubes).unwrap();

        let i = word_pick % words.len();
        let bit = bit_pick % code.tam_width();
        let mut flipped = words.clone();
        flipped[i] = Codeword::unpack(flipped[i].pack(code) ^ (1 << bit), code);
        match verify_stream(code, flipped, &cubes) {
            Ok(()) => {} // flip landed on a don't-care: harmless
            Err(StreamError::Malformed(_))
            | Err(StreamError::SliceCountMismatch { .. })
            | Err(StreamError::CareBitViolation { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// Truncated codeword streams are always rejected (the decoder can
    /// never mistake a prefix for a complete stream of the same cubes).
    #[test]
    fn truncated_codeword_streams_are_rejected(m in 6u32..20, cut_frac in 0.0f64..1.0) {
        let code = SliceCode::for_chains(m);
        let cubes: Vec<soc_tdc::model::TritVec> = (0..2)
            .map(|i| {
                (0..m)
                    .map(|j| if (i + j as usize).is_multiple_of(2) { '1' } else { '0' })
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        let enc = Encoder::new(code);
        let words: Vec<Codeword> =
            cubes.iter().flat_map(|c| enc.encode_slice(c)).collect();
        let cut = ((words.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < words.len());
        prop_assert!(verify_stream(code, words[..cut].iter().copied(), &cubes).is_err());
    }

    /// Mutated ITC'02 inputs never panic the parser — including headers
    /// that declare absurd scan-chain counts.
    #[test]
    fn itc02_mutations_never_panic(
        count in prop_oneof![Just(u32::MAX), Just(1_000_000u32), any::<u32>()],
        junk in "[A-Za-z0-9 \n]{0,40}",
    ) {
        let text = format!(
            "SocName fuzz\nTotalModules 1\nModule 1\nInputs 4\nOutputs 4\n\
             ScanChains {count} 8 8\nTotalTests 1\nTest 1\nTotalPatterns 5\n{junk}"
        );
        let _ = parse_itc02(&text, 0.5); // must not panic or blow memory
    }
}

/// Deterministic, direct corruption check through the public API: a plan
/// whose declared per-core time is shrunk must be rejected at export.
#[test]
fn shrunk_slots_are_rejected_at_export() {
    let soc = small_soc(7);
    let plan = Planner::per_core_tdc()
        .plan(&soc, &PlanRequest::tam_width(8).exact())
        .unwrap();
    let text = write_plan(&plan);
    let corrupted: String = text
        .lines()
        .map(|l| {
            if l.starts_with("core 0 ") {
                let mut parts: Vec<&str> = l.split_whitespace().collect();
                let t = parts.iter().position(|&p| p == "time").unwrap();
                parts[t + 1] = "2";
                parts.join(" ")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let bad_plan = parse_plan(&corrupted).unwrap();
    assert!(matches!(
        export_image(&soc, &bad_plan),
        Err(ImageError::SlotOverflow { .. })
    ));
}

/// A hand-corrupted plan pointing a core at a TAM that doesn't exist must
/// surface as the typed [`ImageError::UnknownTam`] — this exact input used
/// to panic `export_image` through direct `tams[setting.tam]` indexing.
#[test]
fn dangling_tam_reference_is_a_typed_error() {
    let soc = small_soc(11);
    let mut plan = Planner::no_tdc()
        .plan(&soc, &PlanRequest::tam_width(8))
        .unwrap();
    let tams = plan.tam_count();
    plan.core_settings[0].tam = tams + 5;
    match export_image(&soc, &plan) {
        Err(ImageError::UnknownTam { tam, tams: got, .. }) => {
            assert_eq!(tam, tams + 5);
            assert_eq!(got, tams);
        }
        other => panic!("expected UnknownTam, got {other:?}"),
    }
}

/// A slot shifted past the plan's makespan must surface as the typed
/// [`ImageError::StreamOutOfBounds`] — previously an out-of-bounds panic in
/// the tester image's word table.
#[test]
fn slot_past_makespan_is_a_typed_error() {
    let soc = small_soc(13);
    let mut plan = Planner::no_tdc()
        .plan(&soc, &PlanRequest::tam_width(8))
        .unwrap();
    plan.core_settings[0].start = plan.test_time;
    match export_image(&soc, &plan) {
        Err(ImageError::StreamOutOfBounds { cycle, cycles }) => {
            assert!(cycle >= cycles, "reported cycle {cycle} within {cycles}");
        }
        other => panic!("expected StreamOutOfBounds, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Profile-CSV cache corruption: the on-disk profile cache is untrusted
// input on re-read. Truncation, bit flips, and random damage must surface
// as typed `ProfileCsvError`s — never a panic and never a silently wrong
// profile.

use soc_tdc::selenc::{CoreProfile, ProfileConfig, ProfileCsvError};

fn cached_profile(seed: u64) -> CoreProfile {
    let mut core = soc_tdc::model::Core::builder("cache")
        .inputs(8)
        .flexible_cells(400, 64)
        .pattern_count(5)
        .care_density(0.15)
        .build()
        .unwrap();
    let ts = soc_tdc::model::CubeSynthesis::new(0.15).synthesize(&core, seed);
    core.attach_test_set(ts).unwrap();
    CoreProfile::build(&core, &ProfileConfig::new(8).m_candidates(4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chopping a checked profile CSV anywhere must be detected: either
    /// the integrity trailer is gone (`MissingTrailer`) or the row count /
    /// checksum no longer matches. Parsing must never panic.
    #[test]
    fn truncated_profile_csv_is_detected(seed in 0u64..50, cut in 1usize..400) {
        let csv = cached_profile(seed).to_csv();
        // Keep the cut at least two bytes deep so it always damages the
        // trailer (dropping only the final newline is legitimately fine).
        let cut = cut.min(csv.len().saturating_sub(2));
        let chopped = csv.get(..cut).unwrap_or("");
        // Lenient parse may or may not succeed; checked must reject.
        let _ = CoreProfile::from_csv(String::from("cache"), chopped);
        let err = CoreProfile::from_csv_checked(String::from("cache"), chopped);
        prop_assert!(err.is_err(), "truncation at {cut} accepted");
    }

    /// Flipping any single byte of a checked profile CSV must be detected
    /// by the checked parse (checksum, field, or structure error) — the
    /// quarantine-and-rebuild path depends on this.
    #[test]
    fn corrupted_profile_csv_is_detected(seed in 0u64..50, pos in 0usize..4000, xor in 1u8..128) {
        let csv = cached_profile(seed).to_csv();
        let pos = pos % csv.len();
        let mut bytes = csv.clone().into_bytes();
        let Some(b) = bytes.get_mut(pos) else { return; };
        let flipped = *b ^ xor;
        // Keep the mutation inside ASCII so the comparison is about
        // integrity checking, not UTF-8 decoding.
        *b = if flipped.is_ascii() && flipped != b'\n' { flipped } else { b'#' };
        let Ok(text) = String::from_utf8(bytes) else { return; };
        if text == csv {
            return;
        }
        match CoreProfile::from_csv_checked(String::from("cache"), &text) {
            // Detected: any typed error is a pass.
            Err(_) => {}
            // Accepted: only tolerable when the damage was confined to a
            // comment and the parsed profile is bit-identical.
            Ok(p) => prop_assert!(
                p == cached_profile(seed),
                "byte {pos} xor {xor} accepted but changed the profile"
            ),
        }
    }

    /// The quarantine trigger in the planner consumes these errors; their
    /// Display text must name the failing line so operators can audit the
    /// quarantined file. (Also pins the error taxonomy as stable API.)
    #[test]
    fn profile_csv_errors_carry_line_numbers(line in 1usize..500) {
        // Valid filler rows with strictly increasing widths, then one
        // malformed row at exactly line `line`.
        let filler: String = (1..line).map(|i| format!("{},4,100,50\n", i + 2)).collect();
        let bad_rows = format!("{filler}x,y,z,w\n");
        match CoreProfile::from_csv(String::from("x"), &bad_rows) {
            Err(ProfileCsvError::Number { line: l }) | Err(ProfileCsvError::FieldCount { line: l }) => {
                prop_assert_eq!(l, line);
                prop_assert!(format!("{}", ProfileCsvError::Number { line: l }).contains(&l.to_string()));
            }
            other => prop_assert!(false, "expected a typed row error, got {other:?}"),
        }
    }
}
