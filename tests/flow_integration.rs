//! Integration tests for the full downstream-user flow: ITC'02 input →
//! planning → tester-image export → bit-exact verification → RTL
//! emission, plus the scheduling extensions (precedence, annealing) driven
//! from planner outputs.

#![forbid(unsafe_code)]

use soc_tdc::model::generator::synthesize_missing_test_sets;
use soc_tdc::model::itc02::{parse_itc02, write_itc02};
use soc_tdc::planner::{export_image, verify_image, DecisionConfig, PlanRequest, Planner};
use soc_tdc::selenc::{generate_verilog, SliceCode, SliceStats};
use soc_tdc::tam::{
    anneal_architecture, precedence_schedule, AnnealOptions, CostModel, Precedence,
};

const ITC02_TEXT: &str = "\
SocName flow
TotalModules 4
Module 0
  Level 0
  TotalTests 0
Module 1
  Level 1
  Inputs 12 Outputs 10
  ScanChains 12 : 20 20 20 20 20 20 18 18 18 18 18 18
  TotalTests 1
  Test 1:
    TotalPatterns 25
Module 2
  Level 1
  Inputs 20 Outputs 20
  ScanChains 16 : 25 25 25 25 25 25 25 25 24 24 24 24 24 24 24 24
  TotalTests 1
  Test 1:
    TotalPatterns 30
Module 3
  Level 1
  Inputs 8 Outputs 8
  ScanChains 10 : 30 30 30 30 30 28 28 28 28 28
  TotalTests 1
  Test 1:
    TotalPatterns 20
";

fn prepared_soc() -> soc_tdc::model::Soc {
    let mut soc = parse_itc02(ITC02_TEXT, 0.05).unwrap().soc;
    synthesize_missing_test_sets(&mut soc, 123);
    soc
}

#[test]
fn itc02_to_verified_tester_image() {
    let soc = prepared_soc();
    let plan = Planner::per_core_tdc()
        .plan(&soc, &PlanRequest::tam_width(12).exact())
        .unwrap();
    let image = export_image(&soc, &plan).unwrap();
    verify_image(&image, &soc, &plan).unwrap();
    // Compression visible end to end on these sparse cubes.
    assert!(image.volume_bits() < soc.initial_volume_bits());
}

#[test]
fn itc02_writer_reader_roundtrip_through_planning() {
    let soc = prepared_soc();
    let rewritten = write_itc02(&soc);
    let mut reparsed = parse_itc02(&rewritten, 0.05).unwrap().soc;
    synthesize_missing_test_sets(&mut reparsed, 123);
    let a = Planner::no_tdc()
        .plan(&soc, &PlanRequest::tam_width(10))
        .unwrap();
    let b = Planner::no_tdc()
        .plan(&reparsed, &PlanRequest::tam_width(10))
        .unwrap();
    assert_eq!(a.test_time, b.test_time, "structure survived the roundtrip");
}

#[test]
fn rtl_is_emitted_for_every_planned_decompressor() {
    let soc = prepared_soc();
    let plan = Planner::per_core_tdc()
        .plan(&soc, &PlanRequest::tam_width(12).exact())
        .unwrap();
    let mut emitted = 0;
    for s in &plan.core_settings {
        if let Some((_, m)) = s.decompressor {
            let name = format!("decomp_{}", s.core.0);
            let v = generate_verilog(SliceCode::for_chains(m), &name);
            assert!(v.contains(&format!("module {name} (")));
            assert!(v.contains(&format!("output reg  [{}:0]      slice,", m - 1)));
            emitted += 1;
        }
    }
    assert!(
        emitted > 0,
        "sparse cores should have received decompressors"
    );
}

#[test]
fn slice_stats_explain_planner_choices() {
    let soc = prepared_soc();
    let core = &soc.cores()[0];
    // At the planner's preferred class the minority-care count per slice is
    // small — that is *why* compression wins on this core.
    let stats = SliceStats::for_core(core, 24, usize::MAX);
    assert!(stats.mean_targets_per_slice < 2.0, "{stats:?}");
    assert!(stats.slices_per_pattern > 0);
}

#[test]
fn planner_output_feeds_scheduling_extensions() {
    let soc = prepared_soc();
    let plan = Planner::per_core_tdc()
        .plan(
            &soc,
            &PlanRequest::tam_width(12).with_decisions(DecisionConfig {
                pattern_sample: Some(8),
                m_candidates: 8,
            }),
        )
        .unwrap();

    // Rebuild a cost model at the plan's operating points.
    let max_w = plan.schedule.tam_widths().iter().copied().max().unwrap();
    let mut cost = CostModel::new(max_w);
    for s in &plan.core_settings {
        let mut row = vec![None; max_w as usize];
        for w in s.tam_width..=max_w {
            row[(w - 1) as usize] = Some(s.test_time);
        }
        cost.push_core(&s.name, row);
    }
    let widths = plan.schedule.tam_widths().to_vec();

    // Precedence: module order 0 → 1 → 2 must be honored.
    let prec = Precedence::from_edges(vec![(0, 1), (1, 2)]);
    let sched = precedence_schedule(&cost, &widths, &prec).unwrap();
    sched.validate(&cost).unwrap();
    prec.validate(&sched).unwrap();

    // Annealing over the same cost model produces a valid architecture at
    // least as good as one big TAM.
    let arch = anneal_architecture(&cost, max_w, &AnnealOptions::default()).unwrap();
    arch.schedule.validate(&cost).unwrap();
}

#[test]
fn sampled_plans_may_overflow_export_and_say_so() {
    // Image export demands exact stream lengths; a sampled plan either
    // works or fails with the documented SlotOverflow — never silently
    // corrupts.
    let soc = prepared_soc();
    let plan = Planner::per_core_tdc()
        .plan(
            &soc,
            &PlanRequest::tam_width(12).with_decisions(DecisionConfig {
                pattern_sample: Some(2),
                m_candidates: 4,
            }),
        )
        .unwrap();
    match export_image(&soc, &plan) {
        Ok(image) => verify_image(&image, &soc, &plan).unwrap(),
        Err(e) => assert!(
            matches!(e, soc_tdc::planner::ImageError::SlotOverflow { .. }),
            "unexpected error {e}"
        ),
    }
}
