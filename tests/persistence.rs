//! Persistence round-trips driving real planning: pattern files feeding
//! cores, cached profile CSVs answering the same queries, and plan files
//! replayed through verification.

#![forbid(unsafe_code)]

use soc_tdc::model::format::parse_soc;
use soc_tdc::model::patfile::{parse_patterns, write_patterns};
use soc_tdc::planner::{parse_plan, write_plan, DecisionConfig, PlanRequest, Planner};
use soc_tdc::selenc::{CoreProfile, ProfileConfig};

#[test]
fn real_cubes_arrive_via_pattern_files() {
    // A user describes the SOC and ships cubes separately.
    let mut soc = parse_soc("soc pf\ncore a inputs 4 outputs 2 patterns 3 scan 4 4\n").unwrap();
    let cubes = parse_patterns(
        "bits 12\n\
         0101XXXX11XX\n\
         XXXX0000XXXX\n\
         1X1X1X1X1X1X\n",
    )
    .unwrap();
    soc.cores_mut()[0].attach_test_set(cubes).unwrap();
    soc.validate().unwrap();

    let plan = Planner::per_core_tdc()
        .plan(&soc, &PlanRequest::tam_width(4).exact())
        .unwrap();
    assert_eq!(plan.core_settings.len(), 1);
    assert!(plan.test_time > 0);

    // And the cubes survive a write/read cycle byte-identically.
    let ts = soc.cores()[0].test_set().unwrap();
    assert_eq!(&parse_patterns(&write_patterns(ts)).unwrap(), ts);
}

#[test]
fn cached_profiles_reproduce_fresh_ones() {
    let soc = soc_tdc::model::benchmarks::Design::D695.build_with_cubes(8);
    let (_, core) = soc.core_by_name("s38417").unwrap();
    let fresh = CoreProfile::build(
        core,
        &ProfileConfig::new(10).pattern_sample(8).m_candidates(8),
    );
    let cached = CoreProfile::from_csv(fresh.name().to_string(), &fresh.to_csv()).unwrap();
    assert_eq!(fresh, cached);
    for w in 3..=10 {
        assert_eq!(
            fresh.best_at_most(w).map(|e| (e.tam_width, e.chains)),
            cached.best_at_most(w).map(|e| (e.tam_width, e.chains)),
            "w={w}"
        );
    }
}

#[test]
fn plan_files_survive_a_double_roundtrip() {
    let soc = soc_tdc::model::benchmarks::Design::System1.build_with_cubes(8);
    let plan = Planner::select_tdc()
        .plan(
            &soc,
            &PlanRequest::tam_width(16).with_decisions(DecisionConfig {
                pattern_sample: Some(6),
                m_candidates: 6,
            }),
        )
        .unwrap();
    let once = write_plan(&plan);
    let twice = write_plan(&parse_plan(&once).unwrap());
    assert_eq!(once, twice, "serialization must be a fixed point");
    // Techniques survive (select mode mixes them).
    let reparsed = parse_plan(&twice).unwrap();
    assert_eq!(
        reparsed
            .core_settings
            .iter()
            .map(|s| s.technique)
            .collect::<Vec<_>>(),
        plan.core_settings
            .iter()
            .map(|s| s.technique)
            .collect::<Vec<_>>()
    );
}
