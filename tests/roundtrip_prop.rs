//! Property-based tests of the compression substrate: for arbitrary cubes
//! and wrapper geometries, the decompressor must reproduce every care bit,
//! and the fast cost path must agree with the real encoder.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_tdc::model::{Core, Trit, TritVec};
use soc_tdc::selenc::{cube_cost, encode_cube, Codeword, Decompressor, Encoder, SliceCode};
use soc_tdc::wrapper::design_wrapper;

/// Strategy: a ternary cube of the given length with ~`density` care bits.
fn cube(len: usize, density: f64) -> impl Strategy<Value = TritVec> {
    let x_weight = ((1.0 - density) * 50.0) as u32 + 1;
    let care_weight = (density * 25.0) as u32 + 1;
    proptest::collection::vec(
        prop_oneof![
            x_weight => Just(Trit::X),
            care_weight => Just(Trit::Zero),
            care_weight => Just(Trit::One),
        ],
        len,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// A small hard core with arbitrary chain structure, plus a cube for it.
fn core_and_cube() -> impl Strategy<Value = (Core, TritVec)> {
    (
        proptest::collection::vec(1u32..40, 1..6), // scan chains
        0u32..12,                                  // inputs
        0u32..12,                                  // outputs
        0.02f64..0.9,                              // care density
    )
        .prop_flat_map(|(chains, inputs, outputs, density)| {
            let core = Core::builder("prop")
                .inputs(inputs)
                .outputs(outputs)
                .fixed_chains(chains)
                .pattern_count(1)
                .build()
                .expect("valid core");
            let len = core.scan_load_bits() as usize;
            cube(len, density).prop_map(move |c| (core.clone(), c))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decode_of_encode_satisfies_every_care_bit(
        (core, cube) in core_and_cube(),
        m in 1u32..24,
    ) {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        let words = encode_cube(&enc, &design, &cube);
        let mut dec = Decompressor::new(code);
        let slices = dec.decode_all(words.iter().copied()).expect("well-formed stream");
        prop_assert_eq!(slices.len() as u64, design.scan_in_length());
        for (depth, slice) in slices.iter().enumerate() {
            for (k, chain) in design.chains().iter().enumerate() {
                if let Some(pos) = chain.position_at(depth as u64) {
                    prop_assert!(
                        cube.get(pos as usize).accepts(slice[k]),
                        "care bit violated at depth {} chain {}", depth, k
                    );
                }
            }
        }
    }

    #[test]
    fn fast_cost_agrees_with_real_encoder(
        (core, cube) in core_and_cube(),
        m in 1u32..24,
    ) {
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let enc = Encoder::new(code);
        prop_assert_eq!(
            cube_cost(code, &design, &cube),
            encode_cube(&enc, &design, &cube).len() as u64
        );
    }

    #[test]
    fn every_cube_position_loads_exactly_once(
        (core, _cube) in core_and_cube(),
        m in 1u32..24,
    ) {
        let design = design_wrapper(&core, m);
        let mut seen = vec![0u32; core.scan_load_bits() as usize];
        for chain in design.chains() {
            for depth in 0..chain.load_len() {
                seen[chain.position_at(depth).unwrap() as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn codeword_wire_format_roundtrips(m in 1u32..600, mode: bool, last: bool) {
        let code = SliceCode::for_chains(m);
        let max_data = (1u32 << code.data_bits()) - 1;
        for data in [0, m / 2, m, max_data] {
            let cw = Codeword { mode, last, data };
            prop_assert_eq!(Codeword::unpack(cw.pack(code), code), cw);
        }
    }

    #[test]
    fn tritvec_display_parse_roundtrip(trits in proptest::collection::vec(
        prop_oneof![Just(Trit::Zero), Just(Trit::One), Just(Trit::X)], 0..200)
    ) {
        let v: TritVec = trits.iter().copied().collect();
        let reparsed: TritVec = v.to_string().parse().expect("display emits valid symbols");
        prop_assert_eq!(&reparsed, &v);
        prop_assert_eq!(v.count_cares(), trits.iter().filter(|t| t.is_care()).count());
    }

    #[test]
    fn slice_cost_bounds(
        (core, cube) in core_and_cube(),
        m in 1u32..24,
    ) {
        // Cost per slice is at least 1 and at most 1 + 2·groups codewords
        // — singles beyond 2-per-group would have switched to group copy.
        let design = design_wrapper(&core, m);
        let code = SliceCode::for_chains(design.chain_count());
        let cost = cube_cost(code, &design, &cube);
        let slices = design.scan_in_length();
        prop_assert!(cost >= slices);
        let per_slice_max = 1 + 2 * u64::from(code.group_count());
        prop_assert!(cost <= slices * per_slice_max.max(u64::from(code.chains())));
    }
}
