//! Property-based tests of the TAM/scheduling layer: for arbitrary cost
//! models and partitions, schedules must validate, architecture search must
//! never lose to its own starting point, and power-aware schedules must
//! respect their budget.

#![forbid(unsafe_code)]

use proptest::prelude::*;

use soc_tdc::tam::{
    greedy_schedule, optimize_architecture, power_aware_schedule, ArchitectureOptions, CostModel,
    PowerModel,
};

/// Strategy: a cost model with monotone non-increasing rows (wider TAMs
/// never slower — the planner's tables guarantee this shape).
fn cost_model(max_width: u32) -> impl Strategy<Value = CostModel> {
    proptest::collection::vec((1_000u64..2_000_000, 1u32..=max_width), 1..10).prop_map(
        move |cores| {
            let mut m = CostModel::new(max_width);
            for (i, (work, min_w)) in cores.into_iter().enumerate() {
                let row = (1..=max_width)
                    .map(|w| {
                        if w < min_w {
                            None
                        } else {
                            Some(work / u64::from(w) + 17)
                        }
                    })
                    .collect();
                m.push_core(format!("c{i}"), row);
            }
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_schedules_validate(cost in cost_model(12), split in 1u32..5) {
        let widths: Vec<u32> = soc_tdc::tam::balanced_split(12, split);
        match greedy_schedule(&cost, &widths) {
            Ok(s) => {
                prop_assert!(s.validate(&cost).is_ok());
                prop_assert!(s.makespan() >= cost.lower_bound(12) / 4);
            }
            Err(_) => {
                // Only legitimate when some core needs a wider TAM than any
                // in the partition.
                let widest = *widths.iter().max().unwrap();
                let stuck = (0..cost.core_count())
                    .any(|i| cost.time(i, widest).is_none());
                prop_assert!(stuck, "scheduler failed without an infeasible core");
            }
        }
    }

    #[test]
    fn architecture_search_never_worse_than_single_tam(cost in cost_model(10)) {
        let arch = optimize_architecture(&cost, 10, &ArchitectureOptions::default())
            .expect("width 10 accommodates every core");
        prop_assert!(arch.schedule.validate(&cost).is_ok());
        let single = greedy_schedule(&cost, &[10]).expect("single TAM feasible");
        prop_assert!(arch.test_time <= single.makespan());
        prop_assert!(arch.test_time >= cost.lower_bound(10));
    }

    #[test]
    fn power_budget_is_always_respected(
        cost in cost_model(8),
        powers in proptest::collection::vec(1u64..50, 10),
        budget_extra in 0u64..100,
    ) {
        let n = cost.core_count();
        let powers = powers[..n].to_vec();
        let budget = powers.iter().copied().max().unwrap() + budget_extra;
        let power = PowerModel::new(powers, budget);
        if let Ok(s) = power_aware_schedule(&cost, &[4, 4], &power) {
            prop_assert!(s.validate(&cost).is_ok());
            prop_assert!(power.peak_power(&s) <= budget);
        }
    }

    #[test]
    fn tighter_power_budgets_never_speed_things_up(
        cost in cost_model(8),
        powers in proptest::collection::vec(1u64..50, 10),
    ) {
        let n = cost.core_count();
        let powers = powers[..n].to_vec();
        let pmax: u64 = powers.iter().copied().max().unwrap();
        let total: u64 = powers.iter().sum();
        let loose = PowerModel::new(powers.clone(), total.max(pmax));
        let tight = PowerModel::new(powers, pmax);
        let widths = [4u32, 4];
        if let (Ok(a), Ok(b)) = (
            power_aware_schedule(&cost, &widths, &loose),
            power_aware_schedule(&cost, &widths, &tight),
        ) {
            prop_assert!(b.makespan() >= a.makespan());
        }
    }
}

mod oracle {
    use super::*;
    use soc_tdc::tam::{anneal_architecture, exhaustive_architecture, AnnealOptions};

    fn tiny_cost_model() -> impl Strategy<Value = CostModel> {
        proptest::collection::vec(100u64..50_000, 2..6).prop_map(|works| {
            let mut m = CostModel::new(6);
            for (i, work) in works.into_iter().enumerate() {
                let row = (1..=6u32).map(|w| Some(work / u64::from(w) + 7)).collect();
                m.push_core(format!("c{i}"), row);
            }
            m
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn heuristic_stays_within_35_percent_of_oracle(cost in tiny_cost_model()) {
            let oracle = exhaustive_architecture(&cost, 6, 6).expect("feasible");
            oracle.schedule.validate(&cost).unwrap();
            let heur = optimize_architecture(&cost, 6, &ArchitectureOptions::default())
                .expect("feasible");
            prop_assert!(heur.test_time >= oracle.test_time, "oracle must be optimal");
            prop_assert!(
                heur.test_time as f64 <= oracle.test_time as f64 * 1.35,
                "heuristic {} vs oracle {}", heur.test_time, oracle.test_time
            );
        }

        #[test]
        fn annealing_stays_within_35_percent_of_oracle(cost in tiny_cost_model()) {
            let oracle = exhaustive_architecture(&cost, 6, 6).expect("feasible");
            let sa = anneal_architecture(&cost, 6, &AnnealOptions::default())
                .expect("feasible");
            prop_assert!(sa.test_time >= oracle.test_time);
            prop_assert!(
                sa.test_time as f64 <= oracle.test_time as f64 * 1.35,
                "annealing {} vs oracle {}", sa.test_time, oracle.test_time
            );
        }
    }
}
