//! Fault-injection harness for `soctdc serve`: kill the daemon at armed
//! crash points, corrupt its persistent state, drop client connections —
//! and assert that a restart recovers every session and finishes every
//! journaled request.
//!
//! The daemon is exercised as a real subprocess over its stdio NDJSON
//! protocol (and, for the disconnect test, its HTTP listener), so these
//! tests cover the full wire → journal → plan → persist path.

#![forbid(unsafe_code)]

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn soctdc() -> &'static str {
    env!("CARGO_BIN_EXE_soctdc")
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("service-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A running daemon with line-based access to its stdio protocol.
struct Daemon {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(root: &Path, extra_args: &[&str], fault: Option<&str>) -> Daemon {
        let mut cmd = Command::new(soctdc());
        cmd.arg("serve")
            .arg("--root")
            .arg(root)
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match fault {
            Some(spec) => cmd.env("SOCTDC_FAULT", spec),
            None => cmd.env_remove("SOCTDC_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn soctdc serve");
        let stdin = child.stdin.take().expect("daemon stdin");
        let stdout = BufReader::new(child.stdout.take().expect("daemon stdout"));
        Daemon {
            child,
            stdin,
            stdout,
        }
    }

    fn send(&mut self, line: &str) {
        let _ = writeln!(self.stdin, "{line}");
        let _ = self.stdin.flush();
    }

    /// Reads lines until one contains `needle`, returning it. Panics on
    /// EOF — callers expecting a crash use [`Daemon::wait_for_exit`].
    fn read_until(&mut self, needle: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .stdout
                .read_line(&mut line)
                .expect("daemon stdout read");
            assert!(n > 0, "daemon closed stdout while waiting for {needle:?}");
            if line.contains(needle) {
                return line.trim().to_string();
            }
        }
    }

    /// Waits (bounded) for the process to exit, e.g. after an armed abort.
    fn wait_for_exit(&mut self) {
        for _ in 0..600 {
            if self.child.try_wait().expect("try_wait").is_some() {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        panic!("daemon did not exit");
    }

    fn shutdown(mut self) {
        self.send(r#"{"id":999,"op":"shutdown"}"#);
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn open_session(daemon: &mut Daemon, name: &str) {
    daemon.send(&format!(
        r#"{{"id":1,"op":"open","session":"{name}","benchmark":"d695","seed":1,"density":0.5}}"#
    ));
    let ack = daemon.read_until(r#""id":1"#);
    assert!(ack.contains(r#""ok":true"#), "open failed: {ack}");
}

/// Happy path across a restart: a session and its plans survive a clean
/// shutdown, and the re-served plan text is byte-identical.
#[test]
fn sessions_and_plans_survive_restart() {
    let root = tmp_root("restart");
    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "s1");
    daemon.send(r#"{"id":2,"op":"plan","session":"s1","mode":"no-tdc","width":16,"budget_ms":0}"#);
    let ack = daemon.read_until(r#""id":2"#);
    assert!(ack.contains(r#""request":"0001""#), "{ack}");
    let done = daemon.read_until(r#""event":"plan-done""#);
    assert!(done.contains(r#""outcome":"optimal""#), "{done}");
    daemon.send(r#"{"id":3,"op":"get-plan","session":"s1","request":"0001"}"#);
    let first = daemon.read_until(r#""id":3"#);
    daemon.shutdown();

    let mut daemon = Daemon::spawn(&root, &[], None);
    let ready = daemon.read_until(r#""event":"ready""#);
    assert!(ready.contains(r#""recovered_sessions":1"#), "{ready}");
    assert!(ready.contains(r#""recovered_inflight":0"#), "{ready}");
    daemon.send(r#"{"id":3,"op":"get-plan","session":"s1","request":"0001"}"#);
    let second = daemon.read_until(r#""id":3"#);
    assert_eq!(first, second, "re-served plan differs after restart");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Kill -9 (process abort) right after the request is journaled: the
/// restarted daemon must re-execute the journaled request to completion.
#[test]
fn abort_after_journal_is_replayed_on_restart() {
    let root = tmp_root("journal-abort");
    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "s1");
    daemon.shutdown();

    // Arm the abort and submit a plan: the daemon dies after journaling,
    // before acknowledging or planning.
    let mut daemon = Daemon::spawn(&root, &[], Some("abort:after-journal"));
    daemon.read_until(r#""event":"ready""#);
    daemon.send(r#"{"id":2,"op":"plan","session":"s1","mode":"no-tdc","width":16,"budget_ms":0}"#);
    daemon.wait_for_exit();
    let inflight = root.join("sessions/s1/inflight/0001.json");
    assert!(inflight.exists(), "journal entry missing after abort");
    assert!(
        !root.join("sessions/s1/plans/0001.plan").exists(),
        "no plan may exist yet"
    );

    // Clean restart: recovery re-enqueues and finishes the request.
    let mut daemon = Daemon::spawn(&root, &[], None);
    let ready = daemon.read_until(r#""event":"ready""#);
    assert!(ready.contains(r#""recovered_inflight":1"#), "{ready}");
    let done = daemon.read_until(r#""event":"plan-done""#);
    assert!(done.contains(r#""request":"0001""#), "{done}");
    assert!(root.join("sessions/s1/plans/0001.plan").exists());
    assert!(!inflight.exists(), "journal entry must be cleared");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Abort after planning but *before* the plan is persisted: the journal
/// entry survives, so the restarted daemon plans again and the final plan
/// is identical to an uninterrupted run.
#[test]
fn abort_before_plan_write_is_replayed_bit_identically() {
    let root = tmp_root("write-abort");
    let mut daemon = Daemon::spawn(&root, &[], Some("abort:before-plan-write"));
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "s1");
    daemon.send(r#"{"id":2,"op":"plan","session":"s1","mode":"no-tdc","width":16,"budget_ms":0}"#);
    daemon.wait_for_exit();
    assert!(root.join("sessions/s1/inflight/0001.json").exists());

    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    daemon.read_until(r#""event":"plan-done""#);
    let replayed = std::fs::read_to_string(root.join("sessions/s1/plans/0001.plan")).unwrap();

    // Reference: the same request through an unfaulted daemon.
    daemon.send(r#"{"id":3,"op":"plan","session":"s1","mode":"no-tdc","width":16,"budget_ms":0}"#);
    daemon.read_until(r#""event":"plan-done""#);
    let fresh = std::fs::read_to_string(root.join("sessions/s1/plans/0002.plan")).unwrap();
    assert_eq!(replayed, fresh, "replayed plan differs from a fresh run");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Corrupt persistent state: a flipped byte in a cached profile CSV and a
/// broken session descriptor must both be quarantined on the next use —
/// and the rebuilt plan must be bit-identical to the pre-corruption one.
#[test]
fn corrupt_state_is_quarantined_and_rebuilt() {
    let root = tmp_root("corrupt");
    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "good");
    open_session(&mut daemon, "doomed");
    // per-core planning populates the on-disk profile cache.
    daemon.send(
        r#"{"id":2,"op":"plan","session":"good","mode":"per-core","width":16,"budget_ms":0}"#,
    );
    daemon.read_until(r#""event":"plan-done""#);
    let baseline = std::fs::read_to_string(root.join("sessions/good/plans/0001.plan")).unwrap();
    daemon.shutdown();

    // Flip one data-row digit in every cached profile CSV. Comment lines
    // are outside the integrity checksum, so the corruption must land on
    // a real `w,m,test_time,volume_bits` row to be detectable.
    let mut flipped = 0;
    for path in soc_tdc::planner::profile_cache_entries(&root.join("cache")) {
        let text = std::fs::read_to_string(&path).unwrap();
        let mut done = false;
        let out: Vec<String> = text
            .lines()
            .map(|line| {
                if done || line.starts_with('#') || !line.contains(',') {
                    return line.to_string();
                }
                line.chars()
                    .map(|c| {
                        if !done && c.is_ascii_digit() {
                            done = true;
                            if c == '9' {
                                '8'
                            } else {
                                '9'
                            }
                        } else {
                            c
                        }
                    })
                    .collect()
            })
            .collect();
        if done {
            std::fs::write(&path, out.join("\n") + "\n").unwrap();
            flipped += 1;
        }
    }
    assert!(flipped > 0, "per-core planning must have cached profiles");
    // …and break one session's descriptor outright.
    std::fs::write(root.join("sessions/doomed/meta.json"), "{not json").unwrap();

    let mut daemon = Daemon::spawn(&root, &[], None);
    let ready = daemon.read_until(r#""event":"ready""#);
    assert!(ready.contains(r#""recovered_sessions":1"#), "{ready}");
    assert!(!ready.contains(r#""quarantined":0"#), "{ready}");
    // Replanning sees the corrupt cache files, quarantines them, rebuilds
    // the profiles, and lands on the identical plan.
    daemon.send(
        r#"{"id":2,"op":"plan","session":"good","mode":"per-core","width":16,"budget_ms":0}"#,
    );
    daemon.read_until(r#""event":"plan-done""#);
    let rebuilt = std::fs::read_to_string(root.join("sessions/good/plans/0002.plan")).unwrap();
    assert_eq!(baseline, rebuilt, "plan changed after cache corruption");
    let quarantined = soc_tdc::planner::quarantined_profiles(&root.join("cache")).len();
    assert!(quarantined >= flipped, "corrupt profiles not quarantined");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Corrupt exactly ONE core's cached profile: the incremental rebuild
/// must quarantine and recompute that entry alone — every other core's
/// cache file stays byte-identical, the plan-done event reports exactly
/// one miss, and the plan matches the pre-corruption baseline.
#[test]
fn corrupt_single_core_cache_entry_rebuilds_only_that_core() {
    let root = tmp_root("corrupt-one");
    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "s1");
    daemon
        .send(r#"{"id":2,"op":"plan","session":"s1","mode":"per-core","width":16,"budget_ms":0}"#);
    daemon.read_until(r#""event":"plan-done""#);
    let baseline = std::fs::read_to_string(root.join("sessions/s1/plans/0001.plan")).unwrap();
    daemon.shutdown();

    // Snapshot every cached profile, then flip one data-row digit in the
    // lexicographically first file only.
    let mut cached: Vec<(PathBuf, Vec<u8>)> =
        soc_tdc::planner::profile_cache_entries(&root.join("cache"))
            .into_iter()
            .map(|p| {
                let bytes = std::fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect();
    cached.sort();
    assert!(cached.len() >= 2, "need multiple cores cached");
    let victim = cached[0].0.clone();
    let text = std::fs::read_to_string(&victim).unwrap();
    let mut done = false;
    let out: Vec<String> = text
        .lines()
        .map(|line| {
            if done || line.starts_with('#') || !line.contains(',') {
                return line.to_string();
            }
            line.chars()
                .map(|c| {
                    if !done && c.is_ascii_digit() {
                        done = true;
                        if c == '9' {
                            '8'
                        } else {
                            '9'
                        }
                    } else {
                        c
                    }
                })
                .collect()
        })
        .collect();
    assert!(done, "no data row to corrupt in {victim:?}");
    std::fs::write(&victim, out.join("\n") + "\n").unwrap();

    let mut daemon = Daemon::spawn(&root, &[], None);
    daemon.read_until(r#""event":"ready""#);
    daemon
        .send(r#"{"id":3,"op":"plan","session":"s1","mode":"per-core","width":16,"budget_ms":0}"#);
    let done_event = daemon.read_until(r#""event":"plan-done""#);
    // Exactly the corrupted core missed; everything else was served from
    // the cache untouched.
    assert!(done_event.contains(r#""profile_misses":1"#), "{done_event}");
    assert!(
        done_event.contains(&format!(r#""profile_hits":{}"#, cached.len() - 1)),
        "{done_event}"
    );
    let rebuilt = std::fs::read_to_string(root.join("sessions/s1/plans/0002.plan")).unwrap();
    assert_eq!(
        baseline, rebuilt,
        "plan changed after single-entry corruption"
    );
    // The untouched entries are byte-identical — full hits are never
    // rewritten — and the victim was quarantined before its rebuild.
    for (path, before) in &cached[1..] {
        let after = std::fs::read(path).unwrap();
        assert_eq!(&after, before, "untouched cache entry rewritten: {path:?}");
    }
    let quarantined = soc_tdc::planner::quarantined_profiles(&root.join("cache")).len();
    assert_eq!(quarantined, 1, "exactly the victim must be quarantined");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Load shedding: with a single worker and a one-deep queue, a burst of
/// requests must produce at least one reject carrying `retry_after_ms`,
/// and every accepted request must still complete.
#[test]
fn full_queue_sheds_with_retry_after() {
    let root = tmp_root("shed");
    let mut daemon = Daemon::spawn(&root, &["--workers", "1", "--queue-cap", "1"], None);
    daemon.read_until(r#""event":"ready""#);
    open_session(&mut daemon, "s1");
    let burst = 6;
    for i in 0..burst {
        daemon.send(&format!(
            r#"{{"id":{},"op":"plan","session":"s1","mode":"per-core","width":16,"budget_ms":0}}"#,
            10 + i
        ));
    }
    let mut queued = 0;
    let mut shed = 0;
    let mut done = 0;
    let mut acks = 0;
    while acks < burst {
        let mut line = String::new();
        daemon.stdout.read_line(&mut line).unwrap();
        if line.contains(r#""state":"queued""#) {
            queued += 1;
            acks += 1;
        } else if line.contains("retry_after_ms") {
            shed += 1;
            acks += 1;
        } else if line.contains(r#""ok":false"#) {
            acks += 1;
        } else if line.contains(r#""event":"plan-done""#) {
            done += 1;
        }
    }
    assert!(shed >= 1, "burst of {burst} produced no shed responses");
    assert!(
        queued >= 1,
        "burst of {burst} produced no accepted requests"
    );
    // Every accepted request finishes.
    while done < queued {
        daemon.read_until(r#""event":"plan-done""#);
        done += 1;
    }
    daemon.shutdown();
    // Shed requests left no journal entries behind.
    let inflight = std::fs::read_dir(root.join("sessions/s1/inflight"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert_eq!(inflight, 0, "shed requests leaked journal entries");
    let _ = std::fs::remove_dir_all(&root);
}

/// Dropping an HTTP connection mid-plan cancels the request's token; the
/// worker persists the best incumbent instead of wedging, and the plan is
/// fetchable afterwards over stdio.
#[test]
fn dropped_http_connection_cancels_but_persists() {
    let root = tmp_root("drop");
    let mut daemon = Daemon::spawn(&root, &["--http", "127.0.0.1:0", "--workers", "1"], None);
    daemon.read_until(r#""event":"ready""#);
    let listening = daemon.read_until(r#""event":"http-listening""#);
    let addr = listening
        .split(r#""addr":""#)
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("listen address")
        .to_string();
    open_session(&mut daemon, "s1");

    // Submit a long-budget plan over HTTP and hang up immediately.
    let body =
        r#"{"id":7,"op":"plan","session":"s1","mode":"per-core","width":16,"budget_ms":120000}"#;
    {
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        let request = format!(
            "POST /rpc HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        conn.write_all(request.as_bytes()).unwrap();
        conn.flush().unwrap();
        // Give the daemon a moment to journal and start planning, then drop.
        std::thread::sleep(Duration::from_millis(300));
    }
    // The worker notices the disconnect (cancel) or simply finishes; either
    // way a plan file must appear and the journal must drain.
    let deadline = 1200; // 60 s of 50 ms polls
    let plan_path = root.join("sessions/s1/plans/0001.plan");
    for i in 0..=deadline {
        if plan_path.exists() {
            break;
        }
        assert!(i < deadline, "plan never persisted after client disconnect");
        std::thread::sleep(Duration::from_millis(50));
    }
    daemon.send(r#"{"id":8,"op":"get-plan","session":"s1","request":"0001"}"#);
    let fetched = daemon.read_until(r#""id":8"#);
    assert!(fetched.contains(r#""ok":true"#), "{fetched}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// HTTP status/sessions endpoints answer; unknown paths 404; a queue-full
/// plan over HTTP returns 429 with a Retry-After header.
#[test]
fn http_surface_smoke() {
    let root = tmp_root("http");
    let mut daemon = Daemon::spawn(&root, &["--http", "127.0.0.1:0"], None);
    daemon.read_until(r#""event":"ready""#);
    let listening = daemon.read_until(r#""event":"http-listening""#);
    let addr = listening
        .split(r#""addr":""#)
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("listen address")
        .to_string();

    let get = |path: &str| -> String {
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        conn.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        let _ = BufReader::new(conn).read_to_string(&mut out);
        out
    };
    let status = get("/status");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    assert!(status.contains(r#""queue_capacity""#), "{status}");
    assert!(get("/nope").starts_with("HTTP/1.1 404"));
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
